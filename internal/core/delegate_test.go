package core

import (
	"math"
	"testing"

	"anufs/internal/interval"
)

func reports(lats []float64, reqs []int) []LatencyReport {
	out := make([]LatencyReport, len(lats))
	for i := range lats {
		out[i] = LatencyReport{ServerID: i, MeanLatency: lats[i], Requests: reqs[i]}
	}
	return out
}

func TestAggregateWeightedMean(t *testing.T) {
	cfg := Defaults()
	cfg.Aggregator = WeightedMean
	d := NewDelegate(cfg)
	got := d.Aggregate(reports([]float64{10, 20}, []int{1, 3}))
	want := (10.0 + 60.0) / 4
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("weighted mean %v, want %v", got, want)
	}
}

func TestAggregateIgnoresIdleServers(t *testing.T) {
	for _, agg := range []Aggregator{WeightedMean, Mean, Median} {
		cfg := Defaults()
		cfg.Aggregator = agg
		d := NewDelegate(cfg)
		got := d.Aggregate(reports([]float64{10, 0, 20}, []int{2, 0, 2}))
		if math.Abs(got-15) > 1e-12 {
			t.Fatalf("%s aggregate %v, want 15 (idle server excluded)", agg, got)
		}
	}
}

func TestAggregateMean(t *testing.T) {
	cfg := Defaults()
	cfg.Aggregator = Mean
	d := NewDelegate(cfg)
	// Unweighted: a busy saturated server must not dominate.
	got := d.Aggregate(reports([]float64{1000, 10, 20}, []int{9000, 5, 5}))
	want := (1000.0 + 10 + 20) / 3
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean %v, want %v", got, want)
	}
	if d.Aggregate(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestAggregateMedian(t *testing.T) {
	cfg := Defaults()
	cfg.Aggregator = Median
	d := NewDelegate(cfg)
	if got := d.Aggregate(reports([]float64{5, 100, 7}, []int{1, 1, 1})); got != 7 {
		t.Fatalf("odd median %v, want 7", got)
	}
	if got := d.Aggregate(reports([]float64{4, 8}, []int{1, 1})); got != 6 {
		t.Fatalf("even median %v, want 6", got)
	}
	if got := d.Aggregate(nil); got != 0 {
		t.Fatalf("empty median %v, want 0", got)
	}
}

func TestAggregatorString(t *testing.T) {
	if WeightedMean.String() != "weighted-mean" || Median.String() != "median" || Mean.String() != "mean" {
		t.Fatal("Aggregator.String mismatch")
	}
	if Aggregator(9).String() != "unknown-aggregator" {
		t.Fatal("unknown aggregator string")
	}
}

func TestUpdateShrinksOverloadedGrowsUnderloaded(t *testing.T) {
	cfg := Defaults()
	cfg.Tuning = Tuning{} // raw algorithm
	m := newMapper(t, 2)
	d := NewDelegate(cfg)
	res, err := d.Update(m, reports([]float64{100, 10}, []int{50, 50}))
	if err != nil {
		t.Fatal(err)
	}
	s0, _ := m.ShareFrac(0)
	s1, _ := m.ShareFrac(1)
	if s0 >= s1 {
		t.Fatalf("overloaded server share %v not below underloaded %v", s0, s1)
	}
	if !res.Tuned || res.ChangedMass == 0 {
		t.Fatalf("update reported no tuning: %+v", res)
	}
	if math.Abs(s0+s1-0.5) > 1e-9 {
		t.Fatalf("half occupancy violated: %v", s0+s1)
	}
}

func TestUpdateNoTrafficNoChange(t *testing.T) {
	m := newMapper(t, 3)
	before := m.Shares()
	d := NewDelegate(Defaults())
	res, err := d.Update(m, reports([]float64{0, 0, 0}, []int{0, 0, 0}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuned || res.Aggregate != 0 {
		t.Fatalf("tuned with no traffic: %+v", res)
	}
	for id, s := range m.Shares() {
		if before[id] != s {
			t.Fatalf("share of %d changed with no traffic", id)
		}
	}
}

func TestUpdateRejectsUnknownServer(t *testing.T) {
	m := newMapper(t, 2)
	d := NewDelegate(Defaults())
	_, err := d.Update(m, []LatencyReport{{ServerID: 42, MeanLatency: 5, Requests: 1}})
	if err == nil {
		t.Fatal("report from unknown server accepted")
	}
}

func TestThresholdingLeavesBandAlone(t *testing.T) {
	cfg := Defaults()
	cfg.Tuning = Tuning{Thresholding: true}
	cfg.Threshold = 0.5
	m := newMapper(t, 2)
	d := NewDelegate(cfg)
	// Latencies 90 and 110 around aggregate 100: both inside ±50%.
	res, err := d.Update(m, reports([]float64{90, 110}, []int{50, 50}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuned {
		t.Fatalf("tuned inside threshold band: %+v", res.Decisions)
	}
	for _, dec := range res.Decisions {
		if dec.Factor != 1 || dec.Reason != "within-threshold" {
			t.Fatalf("decision %+v, want within-threshold factor 1", dec)
		}
	}
}

func TestThresholdingTunesOutsideBand(t *testing.T) {
	cfg := Defaults()
	cfg.Tuning = Tuning{Thresholding: true}
	cfg.Threshold = 0.5
	m := newMapper(t, 2)
	d := NewDelegate(cfg)
	res, err := d.Update(m, reports([]float64{300, 10}, []int{50, 50}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tuned {
		t.Fatal("no tuning despite latencies far outside band")
	}
}

func TestTopOffNeverExplicitlyGrows(t *testing.T) {
	cfg := Defaults()
	cfg.Tuning = Tuning{TopOff: true}
	cfg.Threshold = 0.5
	m := newMapper(t, 3)
	d := NewDelegate(cfg)
	res, err := d.Update(m, reports([]float64{500, 100, 1}, []int{30, 30, 30}))
	if err != nil {
		t.Fatal(err)
	}
	for _, dec := range res.Decisions {
		if dec.Factor > 1 {
			t.Fatalf("top-off produced explicit growth: %+v", dec)
		}
		if dec.ServerID == 2 && dec.Reason == "grow-underload" {
			t.Fatalf("idle server explicitly grown under top-off: %+v", dec)
		}
	}
	// Server 2 still gains implicitly via renormalization.
	s2, _ := m.ShareFrac(2)
	if s2 <= 1.0/6 {
		t.Fatalf("underloaded server did not gain implicitly: share %v", s2)
	}
	_ = res
}

func TestDivergentSkipsConvergingServers(t *testing.T) {
	cfg := Defaults()
	cfg.Tuning = Tuning{Divergent: true}
	m := newMapper(t, 2)
	d := NewDelegate(cfg)
	// First round establishes prev: server 0 at 200, server 1 at 50.
	if _, err := d.Update(m, reports([]float64{200, 50}, []int{50, 50})); err != nil {
		t.Fatal(err)
	}
	shares := m.Shares()
	// Second round: server 0 fell to 150 (above avg but converging),
	// server 1 rose to 80 (below avg but converging): no tuning.
	res, err := d.Update(m, reports([]float64{150, 80}, []int{50, 50}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuned {
		t.Fatalf("divergent tuning acted on converging servers: %+v", res.Decisions)
	}
	for _, dec := range res.Decisions {
		if dec.Reason != "convergent" {
			t.Fatalf("decision %+v, want convergent", dec)
		}
	}
	for id, s := range m.Shares() {
		if shares[id] != s {
			t.Fatal("shares changed despite convergent latencies")
		}
	}
}

func TestDivergentActsOnDivergingServers(t *testing.T) {
	cfg := Defaults()
	cfg.Tuning = Tuning{Divergent: true}
	m := newMapper(t, 2)
	d := NewDelegate(cfg)
	if _, err := d.Update(m, reports([]float64{150, 80}, []int{50, 50})); err != nil {
		t.Fatal(err)
	}
	// Server 0 rising above average: diverging, must be tuned down.
	res, err := d.Update(m, reports([]float64{200, 80}, []int{50, 50}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tuned {
		t.Fatal("divergent tuning ignored a diverging server")
	}
}

func TestDivergentSkippedAfterFailover(t *testing.T) {
	cfg := Defaults()
	cfg.Tuning = Tuning{Divergent: true}
	m := newMapper(t, 2)
	d := NewDelegate(cfg)
	if _, err := d.Update(m, reports([]float64{200, 50}, []int{50, 50})); err != nil {
		t.Fatal(err)
	}
	d.ResetState() // delegate crash: next elected delegate has no history
	res, err := d.Update(m, reports([]float64{150, 80}, []int{50, 50}))
	if err != nil {
		t.Fatal(err)
	}
	// Without history the policy is ignored and normal tuning proceeds.
	if !res.Tuned {
		t.Fatal("post-failover update did not tune (divergent should be skipped)")
	}
}

func TestStatelessSameReportsSameDecision(t *testing.T) {
	// Two delegates (one "failed over") reach identical targets from the
	// same reports when divergent tuning is off — the paper's stateless
	// property (§4).
	cfg := Defaults()
	cfg.Tuning = Tuning{Thresholding: true, TopOff: true}
	m1 := newMapper(t, 5)
	m2 := newMapper(t, 5)
	r := reports([]float64{500, 90, 100, 110, 2}, []int{20, 20, 20, 20, 20})
	res1, err := NewDelegate(cfg).Update(m1, r)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := NewDelegate(cfg).Update(m2, r)
	if err != nil {
		t.Fatal(err)
	}
	for id, v := range res1.Targets {
		if res2.Targets[id] != v {
			t.Fatalf("delegates disagree on server %d: %d vs %d", id, v, res2.Targets[id])
		}
	}
}

func TestGammaClampsFactor(t *testing.T) {
	cfg := Defaults()
	cfg.Tuning = Tuning{}
	cfg.Gamma = 2
	m := newMapper(t, 2)
	d := NewDelegate(cfg)
	res, err := d.Update(m, reports([]float64{10000, 1}, []int{50, 50}))
	if err != nil {
		t.Fatal(err)
	}
	for _, dec := range res.Decisions {
		if dec.Factor < 0.5-1e-12 || dec.Factor > 2+1e-12 {
			t.Fatalf("factor %v outside [1/Gamma, Gamma]", dec.Factor)
		}
	}
}

func TestZeroShareServerGetsSeeded(t *testing.T) {
	cfg := Defaults()
	cfg.Tuning = Tuning{} // allow explicit growth
	m := newMapper(t, 2)
	if err := m.Rescale(map[int]uint64{0: interval.Half, 1: 0}); err != nil {
		t.Fatal(err)
	}
	d := NewDelegate(cfg)
	// Server 1 idle at zero latency, server 0 loaded: 1 must grow from zero.
	if _, err := d.Update(m, reports([]float64{100, 0}, []int{50, 0})); err != nil {
		t.Fatal(err)
	}
	s1, _ := m.ShareFrac(1)
	if s1 == 0 {
		t.Fatal("zero-share server not seeded despite wanting growth")
	}
}

func TestUpdatePreservesHalfOccupancy(t *testing.T) {
	m := newMapper(t, 5)
	cfg := Defaults()
	cfg.Tuning = Tuning{}
	d := NewDelegate(cfg)
	lat := []float64{400, 200, 100, 50, 10}
	for round := 0; round < 10; round++ {
		if _, err := d.Update(m, reports(lat, []int{10, 10, 10, 10, 10})); err != nil {
			t.Fatal(err)
		}
		var sum uint64
		for _, s := range m.Shares() {
			sum += s
		}
		if sum != interval.Half {
			t.Fatalf("round %d: shares sum %d != Half", round, sum)
		}
	}
}

// Convergence property: with latency proportional to share/speed (a fluid
// model of a heterogeneous cluster), repeated delegate rounds drive shares
// toward the speed-proportional optimum.
func TestDelegateConvergesOnFluidModel(t *testing.T) {
	speeds := []float64{1, 3, 5, 7, 9}
	m := newMapper(t, len(speeds))
	cfg := Defaults()
	cfg.Tuning = Tuning{Thresholding: true}
	cfg.Threshold = 0.05
	d := NewDelegate(cfg)
	for round := 0; round < 60; round++ {
		lats := make([]float64, len(speeds))
		reqs := make([]int, len(speeds))
		for i := range speeds {
			f, _ := m.ShareFrac(i)
			lats[i] = f / speeds[i] * 1000 // latency ∝ assigned load / speed
			reqs[i] = 1 + int(f*1000)
		}
		if _, err := d.Update(m, reports(lats, reqs)); err != nil {
			t.Fatal(err)
		}
	}
	var speedSum float64
	for _, s := range speeds {
		speedSum += s
	}
	for i, s := range speeds {
		f, _ := m.ShareFrac(i)
		want := 0.5 * s / speedSum
		if math.Abs(f-want) > 0.25*want {
			t.Fatalf("server %d share %v, want ~%v (speed-proportional)", i, f, want)
		}
	}
}

func TestDefaultsSane(t *testing.T) {
	cfg := Defaults()
	if cfg.Gamma <= 1 || cfg.Threshold <= 0 {
		t.Fatalf("Defaults: %+v", cfg)
	}
	if !cfg.Tuning.Thresholding || !cfg.Tuning.TopOff || !cfg.Tuning.Divergent {
		t.Fatal("Defaults must enable all three heuristics (the paper's final config)")
	}
	wd := Config{}.withDefaults()
	if wd.Gamma <= 1 {
		t.Fatal("withDefaults did not set Gamma")
	}
	neg := Config{Threshold: -1}.withDefaults()
	if neg.Threshold != 0 {
		t.Fatal("withDefaults did not clamp negative threshold")
	}
}

func BenchmarkDelegateUpdate(b *testing.B) {
	m := newMapper(b, 16)
	d := NewDelegate(Defaults())
	rep := make([]LatencyReport, 16)
	for i := range rep {
		rep[i] = LatencyReport{ServerID: i, MeanLatency: float64(10 + i*13%97), Requests: 100}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Update(m, rep); err != nil {
			b.Fatal(err)
		}
	}
}
