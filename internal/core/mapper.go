package core

import (
	"fmt"
	"sort"

	"anufs/internal/hashfam"
	"anufs/internal/interval"
)

// Mapper is the ANU placement function: it owns the server→unit-interval
// mapping and locates file sets by hashing. A Mapper is mutated only by the
// delegate (or by membership changes); lookups on a published snapshot are
// safe for concurrent use as long as no mutation is in flight — publish
// Clone()s to readers, as the paper's delegate distributes the mapping to
// all servers.
type Mapper struct {
	cfg Config
	fam *hashfam.Family
	iv  *interval.Interval
	// alive caches the sorted server IDs for the fallback path.
	alive []int
}

// NewMapper creates a mapper over the given servers with equal shares —
// the paper's initial configuration, which "assumes initially that all file
// sets and all servers are uniform" (§7).
func NewMapper(cfg Config, serverIDs []int) (*Mapper, error) {
	cfg = cfg.withDefaults()
	if len(serverIDs) == 0 {
		return nil, fmt.Errorf("core: no servers")
	}
	iv, err := interval.New(serverIDs, interval.EqualShares(len(serverIDs), interval.Half))
	if err != nil {
		return nil, err
	}
	m := &Mapper{
		cfg: cfg,
		fam: hashfam.New(cfg.HashSeed, cfg.MaxRounds),
		iv:  iv,
	}
	m.refreshAlive()
	return m, nil
}

func (m *Mapper) refreshAlive() {
	m.alive = m.iv.Servers()
}

// Config returns the mapper's configuration.
func (m *Mapper) Config() Config { return m.cfg }

// Servers returns the live server IDs in ascending order.
func (m *Mapper) Servers() []int { return append([]int(nil), m.alive...) }

// NumServers reports the number of live servers.
func (m *Mapper) NumServers() int { return len(m.alive) }

// Partitions reports the current partition count of the unit interval.
func (m *Mapper) Partitions() int { return m.iv.Partitions() }

// ShareFrac reports a server's mapped mass as a fraction of the whole unit
// interval (so a balanced n-server system reports 1/(2n) per server).
func (m *Mapper) ShareFrac(id int) (float64, bool) {
	s, ok := m.iv.Share(id)
	if !ok {
		return 0, false
	}
	return float64(s) / float64(interval.Whole), true
}

// Shares returns every server's mapped mass in fixed-point units.
func (m *Mapper) Shares() map[int]uint64 { return m.iv.Shares() }

// Interval exposes a read-only clone of the underlying interval for
// inspection and visualization.
func (m *Mapper) Interval() *interval.Interval { return m.iv.Clone() }

// Locate returns the server responsible for the named file set and the
// number of hash probes used. At half occupancy the expected probe count is
// 2 (paper §4); when all MaxRounds probes land in unmapped space the name
// falls back to a direct hash onto the live servers, and probes reports
// MaxRounds+1.
func (m *Mapper) Locate(name string) (serverID, probes int) {
	for r := 0; r < m.fam.MaxRounds(); r++ {
		p := m.fam.Point64(name, r) >> (64 - interval.UnitBits)
		if owner := m.iv.OwnerAt(p); owner != interval.Free {
			return owner, r + 1
		}
	}
	return m.alive[m.fam.Fallback(name, len(m.alive))], m.fam.MaxRounds() + 1
}

// Owner is Locate without the probe count, for callers that only route.
func (m *Mapper) Owner(name string) int {
	id, _ := m.Locate(name)
	return id
}

// Rescale atomically retargets the mapped masses. The target must name
// exactly the live servers and sum to interval.Half. This is the primitive
// the delegate and the pairwise tuner use.
func (m *Mapper) Rescale(target map[int]uint64) error {
	return m.iv.SetShares(target)
}

// AddServer commissions (or recovers) a server. If shareFrac <= 0 the
// config's SeedShareFrac applies, defaulting to one partition width — the
// paper's "assigned to a free partition". Existing servers are scaled back
// proportionally to preserve half occupancy, and the interval re-partitions
// if needed; neither step moves mass belonging to unaffected servers.
func (m *Mapper) AddServer(id int, shareFrac float64) error {
	if shareFrac <= 0 {
		shareFrac = m.cfg.SeedShareFrac
	}
	var share uint64
	if shareFrac > 0 {
		if shareFrac > 0.5 {
			return fmt.Errorf("core: join share %v exceeds half occupancy", shareFrac)
		}
		share = uint64(shareFrac * float64(interval.Whole))
	} else {
		// One partition width after any re-partitioning the add triggers.
		share = interval.Whole / uint64(interval.PartitionsFor(len(m.alive)+1))
	}
	if err := m.iv.AddServer(id, share); err != nil {
		return err
	}
	m.refreshAlive()
	return nil
}

// RemoveServer decommissions a server or reacts to its failure. The
// survivors grow proportionally to restore half occupancy; only file sets
// that hash into mass that changed hands move (paper §4: "only the file
// set(s) that were served previously by the failed server are re-hashed").
func (m *Mapper) RemoveServer(id int) error {
	if err := m.iv.RemoveServer(id); err != nil {
		return err
	}
	m.refreshAlive()
	return nil
}

// Clone returns an independent snapshot, e.g. for publishing a new
// configuration while retaining the previous one to compute shed sets.
func (m *Mapper) Clone() *Mapper {
	return &Mapper{
		cfg:   m.cfg,
		fam:   m.fam, // immutable, shared
		iv:    m.iv.Clone(),
		alive: append([]int(nil), m.alive...),
	}
}

// Move describes one file set changing servers between two configurations.
type Move struct {
	Name     string
	From, To int
}

// Moves lists the file sets (from names) whose owner differs between two
// mapper configurations — the "shed" computation each server performs when
// it receives an updated mapping (paper §4).
func Moves(before, after *Mapper, names []string) []Move {
	var moves []Move
	for _, n := range names {
		f, t := before.Owner(n), after.Owner(n)
		if f != t {
			moves = append(moves, Move{Name: n, From: f, To: t})
		}
	}
	return moves
}

// ShedSets returns, per shedding server, the file sets it loses between the
// two configurations. Servers that lose nothing do not appear.
func ShedSets(before, after *Mapper, names []string) map[int][]string {
	shed := make(map[int][]string)
	for _, mv := range Moves(before, after, names) {
		shed[mv.From] = append(shed[mv.From], mv.Name)
	}
	for id := range shed { //anufs:allow simdeterminism per-key sort; visiting order cannot matter
		sort.Strings(shed[id])
	}
	return shed
}
