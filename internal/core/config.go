// Package core implements ANU (adaptive, non-uniform) randomization, the
// load-placement and server-provisioning algorithm of Wu & Burns,
// "Handling Heterogeneity in Shared-Disk File Systems" (SC'03).
//
// The algorithm has two halves:
//
//   - A Mapper locates file sets: the file-set name is hashed into the unit
//     interval by an agreed family of hash functions and re-hashed until it
//     lands in some server's mapped region (paper §4, Figure 2). Lookup is
//     deterministic and does no I/O; the only replicated state is the
//     server→interval mapping, which scales with the number of servers, not
//     the number of file sets (paper §5).
//
//   - A Delegate tunes the mapping: each measurement interval the servers
//     report observed request latency, the delegate computes an aggregate
//     and rescales the mapped regions of servers whose latency deviates
//     from it, subject to the three over-tuning heuristics — thresholding,
//     top-off tuning, and divergent tuning (paper §6).
//
// The delegate protocol is stateless (divergent tuning excepted): a failover
// delegate reaches the same decisions from the same reports.
package core

// Aggregator selects how the delegate condenses per-server latencies into
// the system "average" the paper tunes against (§4: "an appropriate average
// is difficult to determine … our system is robust to the choice").
type Aggregator int

const (
	// WeightedMean weights each server's latency by its request count.
	// Caution: when one saturated server completes most of the cluster's
	// requests, its own latency dominates the aggregate and it can sit
	// "within threshold" of itself; Mean and Median are immune.
	WeightedMean Aggregator = iota
	// Median takes the unweighted median over servers that saw requests.
	Median
	// Mean is the unweighted mean over servers that saw requests.
	Mean
)

func (a Aggregator) String() string {
	switch a {
	case WeightedMean:
		return "weighted-mean"
	case Median:
		return "median"
	case Mean:
		return "mean"
	default:
		return "unknown-aggregator"
	}
}

// Tuning enables the over-tuning heuristics of paper §6. The zero value is
// the paper's "early-stage" algorithm that exhibits over-tuning; AllTuning
// is the shipped configuration.
type Tuning struct {
	// Thresholding leaves servers alone while their latency lies within
	// [(1-Threshold)·A, (1+Threshold)·A] of the aggregate A.
	Thresholding bool
	// TopOff restricts the delegate to shrinking overloaded servers;
	// underloaded servers gain mass only implicitly through the
	// half-occupancy renormalization.
	TopOff bool
	// Divergent only tunes servers moving away from the aggregate:
	// above A and rising, or below A and falling. It requires the previous
	// interval's latencies; after a delegate failover the policy is skipped
	// for one interval (paper §6).
	Divergent bool
}

// AllTuning is the paper's final configuration: all three heuristics on.
func AllTuning() Tuning {
	return Tuning{Thresholding: true, TopOff: true, Divergent: true}
}

// Config parameterizes the ANU algorithm. The zero value is not valid;
// fill in or start from Defaults().
type Config struct {
	// HashSeed seeds the shared hash family. Every node must agree on it.
	HashSeed uint64
	// MaxRounds bounds re-hash probes before the direct-to-server fallback;
	// <= 0 selects hashfam.DefaultMaxRounds.
	MaxRounds int
	// Gamma bounds the per-interval scale factor applied to a mapped
	// region: factors are clamped to [1/Gamma, Gamma]. Must be > 1.
	Gamma float64
	// Threshold is the paper's t parameter. The paper reports that "fairly
	// large values" are needed for heterogeneous workloads; its exact value
	// is lost to the OCR, so we default to 0.5 and expose it. The paper's
	// delegate uses "a weighted average of the current latencies" (weights
	// unspecified) and reports robustness to the choice; we default to the
	// unweighted Mean because request-count weighting lets a saturated
	// server that completes most of the traffic dominate the aggregate and
	// hide inside its own threshold band (see Aggregator).
	Threshold float64
	// Tuning selects the over-tuning heuristics.
	Tuning Tuning
	// Aggregator selects the latency average.
	Aggregator Aggregator
	// SeedShareFrac is the share (as a fraction of the whole interval)
	// granted to a server growing from zero mapped mass, and to a newly
	// commissioned server. <= 0 selects one partition width.
	SeedShareFrac float64
}

// Defaults returns the configuration used throughout the paper's final
// experiments.
func Defaults() Config {
	return Config{
		HashSeed:   0x414e5546535f3033, // "ANUFS_03"
		MaxRounds:  0,
		Gamma:      2,
		Threshold:  0.5,
		Tuning:     AllTuning(),
		Aggregator: Mean,
	}
}

// withDefaults fills unset fields with their defaults.
func (c Config) withDefaults() Config {
	if c.Gamma <= 1 {
		c.Gamma = 2
	}
	if c.Threshold < 0 {
		c.Threshold = 0
	}
	return c
}
