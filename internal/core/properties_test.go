package core

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"anufs/internal/interval"
	"anufs/internal/rng"
)

// Property: whatever latencies the delegate sees, every update preserves
// the structural invariants — half occupancy exactly, a valid interval,
// and factors clamped to [1/Γ, Γ].
func TestDelegateUpdateInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewStream(seed)
		n := 2 + r.Intn(10)
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		cfg := Defaults()
		// Randomize the knobs too.
		cfg.Threshold = r.Float64()
		cfg.Gamma = 1.1 + 3*r.Float64()
		cfg.Tuning = Tuning{
			Thresholding: r.Intn(2) == 0,
			TopOff:       r.Intn(2) == 0,
			Divergent:    r.Intn(2) == 0,
		}
		cfg.Aggregator = Aggregator(r.Intn(3))
		m, err := NewMapper(cfg, ids)
		if err != nil {
			return false
		}
		d := NewDelegate(cfg)
		for round := 0; round < 8; round++ {
			reps := make([]LatencyReport, n)
			for i := range reps {
				reps[i] = LatencyReport{
					ServerID:    i,
					MeanLatency: r.Float64() * 10,
					Requests:    r.Intn(100),
				}
			}
			res, err := d.Update(m, reps)
			if err != nil {
				t.Logf("update: %v", err)
				return false
			}
			var sum uint64
			for _, s := range m.Shares() {
				sum += s
			}
			if sum != interval.Half {
				t.Logf("half occupancy broken: %d", sum)
				return false
			}
			if err := m.Interval().Validate(); err != nil {
				t.Logf("interval invalid: %v", err)
				return false
			}
			for _, dec := range res.Decisions {
				if dec.Factor < 1/cfg.Gamma-1e-9 || dec.Factor > cfg.Gamma+1e-9 {
					t.Logf("factor %v outside clamp Γ=%v", dec.Factor, cfg.Gamma)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the number of file sets a server owns tracks its share of the
// interval. After an arbitrary rescale, counts are proportional to shares
// within sampling error.
func TestPlacementTracksShares(t *testing.T) {
	m := newMapper(t, 4)
	q := interval.QuantizeShares([]float64{1, 2, 3, 4}, interval.Half)
	target := map[int]uint64{}
	for i, s := range q {
		target[i] = s
	}
	if err := m.Rescale(target); err != nil {
		t.Fatal(err)
	}
	const sets = 100000
	counts := map[int]int{}
	for i := 0; i < sets; i++ {
		counts[m.Owner(fmt.Sprintf("pt-%d", i))]++
	}
	for id, share := range target {
		wantFrac := float64(share) / float64(interval.Half)
		gotFrac := float64(counts[id]) / sets
		if math.Abs(gotFrac-wantFrac) > 0.01 {
			t.Fatalf("server %d owns %.3f of file sets, share is %.3f", id, gotFrac, wantFrac)
		}
	}
}

// The paper's §4 balance claim for the initial (uniform) configuration:
// with m file sets on n equal servers, each server's count stays within a
// small factor of m/n with high probability. We check max/mean over many
// seeds stays below the loose constant the paper's bound implies at this
// m/n ratio (m/n = 500, where ±3σ of binomial sampling is ~13%).
func TestInitialBalanceBound(t *testing.T) {
	const n, m = 10, 5000
	worst := 0.0
	for seed := uint64(0); seed < 10; seed++ {
		cfg := Defaults()
		cfg.HashSeed = seed
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		mp, err := NewMapper(cfg, ids)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[int]int{}
		for i := 0; i < m; i++ {
			counts[mp.Owner(fmt.Sprintf("bb-%d", i))]++
		}
		for _, c := range counts {
			if r := float64(c) / (m / n); r > worst {
				worst = r
			}
		}
	}
	if worst > 1.25 {
		t.Fatalf("worst server holds %.2fx the mean file-set count — violates the small-constant balance bound", worst)
	}
}

// Property: repeated delegate rounds with *identical balanced* reports
// leave the mapping untouched (no tuning without cause), regardless of the
// heuristic configuration.
func TestBalancedReportsAreFixpoint(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewStream(seed)
		cfg := Defaults()
		cfg.Tuning = Tuning{
			Thresholding: true, // some threshold needed for a dead band
			TopOff:       r.Intn(2) == 0,
			Divergent:    r.Intn(2) == 0,
		}
		cfg.Threshold = 0.2 + r.Float64()
		m, err := NewMapper(cfg, []int{0, 1, 2})
		if err != nil {
			return false
		}
		d := NewDelegate(cfg)
		lat := 0.01 + r.Float64()
		before := m.Shares()
		for i := 0; i < 5; i++ {
			reps := []LatencyReport{
				{ServerID: 0, MeanLatency: lat, Requests: 10},
				{ServerID: 1, MeanLatency: lat, Requests: 10},
				{ServerID: 2, MeanLatency: lat, Requests: 10},
			}
			if _, err := d.Update(m, reps); err != nil {
				return false
			}
		}
		for id, s := range m.Shares() {
			if before[id] != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: fallback routing stays consistent under churn — the same name
// maps to the same server on two mappers that applied the same operations
// in the same order (replicated-state equivalence, §5: the delegate
// distributes the mapping and every node routes identically).
func TestReplicatedMappersRouteIdentically(t *testing.T) {
	build := func() *Mapper {
		m, err := NewMapper(Defaults(), []int{0, 1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		d := NewDelegate(Defaults())
		if _, err := d.Update(m, reports([]float64{9, 1, 1, 1}, []int{5, 5, 5, 5})); err != nil {
			t.Fatal(err)
		}
		if err := m.RemoveServer(2); err != nil {
			t.Fatal(err)
		}
		if err := m.AddServer(7, 0); err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := build(), build()
	for i := 0; i < 2000; i++ {
		name := fmt.Sprintf("repl-%d", i)
		if a.Owner(name) != b.Owner(name) {
			t.Fatalf("replicas disagree on %q", name)
		}
	}
}
