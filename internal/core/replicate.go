package core

import (
	"encoding/json"
	"fmt"

	"anufs/internal/hashfam"
	"anufs/internal/interval"
)

// Configuration replication (paper §4/§5): after each reconfiguration the
// delegate distributes the server→unit-interval mapping — "the only
// replicated state needed by our algorithm" — and any node holding it can
// locate any file set with pure hashing. Because the mapping scales with
// the number of servers rather than file sets, clients can cache it and
// route requests directly.

// wireConfig is the serialized mapper configuration.
type wireConfig struct {
	HashSeed  uint64          `json:"hash_seed"`
	MaxRounds int             `json:"max_rounds"`
	Interval  json.RawMessage `json:"interval"`
}

// MarshalConfig encodes everything a remote node needs to route: the hash
// family parameters and the interval mapping.
func (m *Mapper) MarshalConfig() ([]byte, error) {
	ivData, err := m.iv.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return json.Marshal(wireConfig{
		HashSeed:  m.fam.Seed(),
		MaxRounds: m.fam.MaxRounds(),
		Interval:  ivData,
	})
}

// RouterFromConfig reconstructs a read-only Mapper from a replicated
// configuration. The result routes identically to the source mapper; use
// it for client-side routing or server-side validation of a received
// configuration. Mutating methods work but act on the local copy only —
// the delegate owns the authoritative mapper.
func RouterFromConfig(data []byte) (*Mapper, error) {
	var w wireConfig
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("core: decode config: %w", err)
	}
	var iv interval.Interval
	if err := iv.UnmarshalBinary(w.Interval); err != nil {
		return nil, err
	}
	m := &Mapper{
		cfg: Config{HashSeed: w.HashSeed, MaxRounds: w.MaxRounds}.withDefaults(),
		fam: hashfam.New(w.HashSeed, w.MaxRounds),
		iv:  &iv,
	}
	m.refreshAlive()
	if len(m.alive) == 0 {
		return nil, fmt.Errorf("core: replicated configuration has no servers")
	}
	return m, nil
}
