package core

import (
	"fmt"
	"testing"
)

func TestConfigReplicationRoutesIdentically(t *testing.T) {
	m := newMapper(t, 5)
	d := NewDelegate(Defaults())
	// Skew the mapping so the test isn't trivially uniform.
	if _, err := d.Update(m, reports([]float64{9, 0.5, 0.5, 0.5, 0.5}, []int{9, 9, 9, 9, 9})); err != nil {
		t.Fatal(err)
	}
	data, err := m.MarshalConfig()
	if err != nil {
		t.Fatal(err)
	}
	router, err := RouterFromConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		name := fmt.Sprintf("route-%d", i)
		if m.Owner(name) != router.Owner(name) {
			t.Fatalf("replica disagrees on %q", name)
		}
	}
	if router.NumServers() != m.NumServers() {
		t.Fatalf("replica has %d servers, want %d", router.NumServers(), m.NumServers())
	}
}

func TestConfigReplicationAfterMembershipChange(t *testing.T) {
	m := newMapper(t, 4)
	if err := m.RemoveServer(2); err != nil {
		t.Fatal(err)
	}
	if err := m.AddServer(9, 0); err != nil {
		t.Fatal(err)
	}
	data, err := m.MarshalConfig()
	if err != nil {
		t.Fatal(err)
	}
	router, err := RouterFromConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("chg-%d", i)
		if m.Owner(name) != router.Owner(name) {
			t.Fatalf("replica disagrees on %q after churn", name)
		}
	}
}

func TestRouterFromConfigRejectsGarbage(t *testing.T) {
	for name, in := range map[string]string{
		"not json":     "hello",
		"bad interval": `{"hash_seed":1,"max_rounds":20,"interval":"bogus"}`,
		"empty":        `{}`,
	} {
		if _, err := RouterFromConfig([]byte(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestConfigSizeIndependentOfFileSets(t *testing.T) {
	// Route a million file sets through a mapper; the replicated
	// configuration must not grow (it never mentions file sets).
	m := newMapper(t, 5)
	before, err := m.MarshalConfig()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		m.Owner(fmt.Sprintf("many-%d", i))
	}
	after, err := m.MarshalConfig()
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatalf("config size changed with lookups: %d -> %d", len(before), len(after))
	}
}
