package core

import (
	"fmt"
	"sort"

	"anufs/internal/rng"
)

// PairwiseTuner implements the paper's future-work extension (§5):
// replacing centralized rescaling with pair-wise interactions in which two
// servers exchange latencies and shift mapped mass between themselves. Each
// exchange conserves the pair's combined mass exactly, so the half-occupancy
// invariant holds with no global renormalization step — the property that
// makes the scheme decentralizable.
type PairwiseTuner struct {
	cfg Config
	r   *rng.Stream
	// Kappa in (0,1] controls how much of the pair's imbalance one exchange
	// corrects; small values damp oscillation like thresholding does.
	Kappa float64
}

// NewPairwiseTuner creates a tuner; seed drives the random pair matching.
func NewPairwiseTuner(cfg Config, seed uint64) *PairwiseTuner {
	return &PairwiseTuner{cfg: cfg.withDefaults(), r: rng.NewStream(seed), Kappa: 0.5}
}

// Exchange performs one pairwise exchange between servers a and b given
// their observed latencies. Mass moves from the slower to the faster server
// in proportion to the relative latency gap, clamped by Gamma. It returns
// the mass moved.
func (p *PairwiseTuner) Exchange(m *Mapper, a, b int, latA, latB float64) (uint64, error) {
	shares := m.Shares()
	sa, oka := shares[a]
	sb, okb := shares[b]
	if !oka || !okb {
		return 0, fmt.Errorf("core: pairwise exchange with unknown server (%d,%d)", a, b)
	}
	if latA+latB == 0 {
		return 0, nil
	}
	// Thresholding applies pairwise: ignore small relative gaps.
	gap := (latA - latB) / (latA + latB) // in [-1, 1]
	t := 0.0
	if p.cfg.Tuning.Thresholding {
		t = p.cfg.Threshold / 2 // comparable dead-band to the centralized t
	}
	if gap > -t && gap < t {
		return 0, nil
	}
	// Positive gap: a is slower, sheds mass to b.
	var donor, recipient int
	var donorShare uint64
	frac := gap
	if gap > 0 {
		donor, recipient, donorShare = a, b, sa
	} else {
		donor, recipient, donorShare = b, a, sb
		frac = -gap
	}
	maxFrac := 1 - 1/p.cfg.Gamma // Gamma clamp expressed as a shed fraction
	if frac > maxFrac {
		frac = maxFrac
	}
	delta := uint64(float64(donorShare) * frac * p.Kappa)
	if delta == 0 {
		return 0, nil
	}
	target := shares
	target[donor] -= delta
	target[recipient] += delta
	if err := m.Rescale(target); err != nil {
		return 0, err
	}
	return delta, nil
}

// Round performs one decentralized tuning round: servers are paired by a
// random matching and every pair exchanges once. Reports for missing
// servers default to idle. It returns total mass moved.
func (p *PairwiseTuner) Round(m *Mapper, reports []LatencyReport) (uint64, error) {
	lat := make(map[int]float64, len(reports))
	for _, r := range reports {
		lat[r.ServerID] = r.MeanLatency
	}
	ids := m.Servers()
	sort.Ints(ids)
	perm := p.r.Perm(len(ids))
	var moved uint64
	for i := 0; i+1 < len(perm); i += 2 {
		a, b := ids[perm[i]], ids[perm[i+1]]
		d, err := p.Exchange(m, a, b, lat[a], lat[b])
		if err != nil {
			return moved, err
		}
		moved += d
	}
	return moved, nil
}
