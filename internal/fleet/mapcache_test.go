package fleet

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"anufs/internal/metrics"
	"anufs/internal/placement"
	"anufs/internal/wire"
)

// fakeMapSource is an in-memory Caller that serves OpMap at a settable
// epoch, or fails on demand — the MapCache contract without TCP.
type fakeMapSource struct {
	mu     sync.Mutex
	epoch  uint64
	down   bool
	calls  int
	closed int
}

func (s *fakeMapSource) Call(req wire.Request) (wire.Response, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	if s.down {
		return wire.Response{}, errors.New("fake source down")
	}
	cm := &placement.ClusterMap{
		Epoch:   s.epoch,
		Daemons: []placement.DaemonInfo{{ID: 0, Addr: "d0", Speed: 1}},
		Assign:  map[string]int{"fs00": 0},
	}
	b, err := cm.Encode()
	if err != nil {
		return wire.Response{}, err
	}
	return wire.Response{ID: req.ID, Map: b}, nil
}

func (s *fakeMapSource) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed++
	return nil
}

func (s *fakeMapSource) set(epoch uint64, down bool) {
	s.mu.Lock()
	s.epoch, s.down = epoch, down
	s.mu.Unlock()
}

func (s *fakeMapSource) stats() (calls, closed int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls, s.closed
}

func fakeCache(t *testing.T, srcs map[string]*fakeMapSource, order ...string) (*MapCache, *metrics.CounterSet) {
	t.Helper()
	ctrs := metrics.NewCounterSet()
	mc := NewMapCache(order, func(addr string) (Caller, error) {
		s, ok := srcs[addr]
		if !ok {
			return nil, errors.New("no route to " + addr)
		}
		return s, nil
	}, ctrs)
	t.Cleanup(mc.Close)
	return mc, ctrs
}

// A peer that satisfies the floor spares the authority entirely — that is
// the whole point of the shared gateway map cache.
func TestMapCachePeerSparesAuthority(t *testing.T) {
	peer := &fakeMapSource{epoch: 5}
	auth := &fakeMapSource{epoch: 5}
	mc, ctrs := fakeCache(t, map[string]*fakeMapSource{"peer": peer, "auth": auth}, "peer", "auth")

	cm, err := mc.Get()
	if err != nil {
		t.Fatal(err)
	}
	if cm.Epoch != 5 {
		t.Fatalf("epoch %d, want 5", cm.Epoch)
	}
	if calls, _ := auth.stats(); calls != 0 {
		t.Fatalf("authority was asked %d times with a satisfying peer", calls)
	}
	if got := ctrs.Get(CtrMapPeerHits); got != 1 {
		t.Fatalf("peer hits = %d, want 1", got)
	}
	if got := ctrs.Get(CtrMapFetches); got != 1 {
		t.Fatalf("fetches = %d, want 1", got)
	}

	// Cached and satisfying: no further fetches.
	if _, err := mc.Get(); err != nil {
		t.Fatal(err)
	}
	if calls, _ := peer.stats(); calls != 1 {
		t.Fatalf("cached Get refetched (peer calls = %d)", calls)
	}
}

// Invalidate raises the floor: a stale peer is consulted but cannot
// satisfy it, so the refresh falls through to the authority.
func TestMapCacheInvalidateFallsThroughStalePeer(t *testing.T) {
	peer := &fakeMapSource{epoch: 5}
	auth := &fakeMapSource{epoch: 9}
	mc, _ := fakeCache(t, map[string]*fakeMapSource{"peer": peer, "auth": auth}, "peer", "auth")

	if cm, err := mc.Get(); err != nil || cm.Epoch != 5 {
		t.Fatalf("initial Get = %v, %v", cm, err)
	}
	mc.Invalidate(7)
	cm, err := mc.Get()
	if err != nil {
		t.Fatal(err)
	}
	if cm.Epoch != 9 {
		t.Fatalf("post-invalidate epoch %d, want 9", cm.Epoch)
	}
	if calls, _ := auth.stats(); calls != 1 {
		t.Fatalf("authority calls = %d, want 1", calls)
	}
	// A lower floor than the cached epoch is a no-op.
	mc.Invalidate(3)
	if _, err := mc.Get(); err != nil {
		t.Fatal(err)
	}
	if calls, _ := auth.stats(); calls != 1 {
		t.Fatalf("no-op invalidate triggered a refetch (auth calls = %d)", calls)
	}
}

// A down source is skipped (and its connection dropped for redial); the
// next source still answers, so the refresh succeeds.
func TestMapCacheSkipsDownSource(t *testing.T) {
	peer := &fakeMapSource{down: true}
	auth := &fakeMapSource{epoch: 2}
	mc, _ := fakeCache(t, map[string]*fakeMapSource{"peer": peer, "auth": auth}, "peer", "auth")

	cm, err := mc.Get()
	if err != nil {
		t.Fatal(err)
	}
	if cm.Epoch != 2 {
		t.Fatalf("epoch %d, want 2", cm.Epoch)
	}
	if _, closed := peer.stats(); closed == 0 {
		t.Fatal("failed source connection was not dropped")
	}

	// Peer recovers with a newer map; the next forced refresh uses it.
	peer.set(4, false)
	mc.Invalidate(3)
	cm, err = mc.Get()
	if err != nil {
		t.Fatal(err)
	}
	if cm.Epoch != 4 {
		t.Fatalf("epoch %d after peer recovery, want 4", cm.Epoch)
	}
}

// With every source down the error names the first failure, but the stale
// cached map is still returned — callers route on their best knowledge.
func TestMapCacheAllSourcesDown(t *testing.T) {
	peer := &fakeMapSource{epoch: 5}
	mc, _ := fakeCache(t, map[string]*fakeMapSource{"peer": peer}, "peer")

	if _, err := mc.Get(); err != nil {
		t.Fatal(err)
	}
	peer.set(5, true)
	mc.Invalidate(6)
	cm, err := mc.Get()
	if err == nil {
		t.Fatal("refresh with every source down reported success")
	}
	if !strings.Contains(err.Error(), "map source peer") {
		t.Fatalf("error does not name the source: %v", err)
	}
	if cm == nil || cm.Epoch != 5 {
		t.Fatalf("stale map not returned alongside the error: %v", cm)
	}
}

func TestMapCacheNoSources(t *testing.T) {
	mc, _ := fakeCache(t, nil)
	if _, err := mc.Refresh(); err == nil || !strings.Contains(err.Error(), "no sources") {
		t.Fatalf("refresh with no sources = %v", err)
	}
}

func TestMapCacheClose(t *testing.T) {
	peer := &fakeMapSource{epoch: 1}
	mc, _ := fakeCache(t, map[string]*fakeMapSource{"peer": peer}, "peer")
	if _, err := mc.Get(); err != nil {
		t.Fatal(err)
	}
	mc.Close()
	if _, closed := peer.stats(); closed != 1 {
		t.Fatal("close did not tear down the cached connection")
	}
	mc.Invalidate(99)
	if _, err := mc.Get(); err == nil {
		t.Fatal("refresh after close succeeded")
	}
}
