package fleet

import (
	"fmt"
	"time"

	"anufs/internal/placement"
	"anufs/internal/sharedisk"
)

// MapFileSet is the pseudo file set the authority persists the cluster map
// under. Writing the map through the daemon's Durable disk makes it a
// journaled, snapshot-surviving record that the existing log shipper
// carries to the standby authority for free — the map replicates on the
// same machinery as file-set metadata. The "/" in the name keeps it out of
// the flat client namespace, and it is never in any map's Assign, so the
// fleet gate rejects every client operation addressed to it.
const MapFileSet = "__fleet/map"

// mapRecordKey is the single record inside the map image; the encoded map
// rides in the record's Owner field (a string — Record has no byte payload
// and the map is JSON anyway).
const mapRecordKey = "clustermap"

// EncodeMapImage wraps an encoded cluster map in a shared-disk image whose
// Version is the map's epoch — Install's downgrade check then enforces
// monotonicity for free, and a standby replaying shipped segments always
// ends at the newest map it received.
func EncodeMapImage(cm *placement.ClusterMap) (sharedisk.Image, error) {
	encoded, err := cm.Encode()
	if err != nil {
		return sharedisk.Image{}, err
	}
	return sharedisk.Image{
		Version: cm.Epoch,
		Records: map[string]sharedisk.Record{
			mapRecordKey: {
				Size:    int64(len(encoded)),
				ModTime: time.Now(),
				Owner:   string(encoded),
			},
		},
	}, nil
}

// DecodeMapImage recovers the cluster map from a persisted map image — the
// promoted standby's first step back to authority.
func DecodeMapImage(im sharedisk.Image) (*placement.ClusterMap, error) {
	rec, ok := im.Records[mapRecordKey]
	if !ok {
		return nil, fmt.Errorf("fleet: image %q carries no %s record", MapFileSet, mapRecordKey)
	}
	return placement.DecodeClusterMap([]byte(rec.Owner))
}
