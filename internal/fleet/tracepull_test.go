package fleet

import (
	"testing"
	"time"

	"anufs/internal/obs"
	"anufs/internal/sharedisk"
	"anufs/internal/wire"
)

// TestForwardTracePropagationAndPull: a traced raw request through the
// router keeps its trace context across a wrong-owner reroute (emitting a
// route-retry span into the router's registry), and PullTrace retrieves
// the daemon-side spans — with clock samples for the stitcher and an
// explicit error for an unreachable hop.
func TestForwardTracePropagationAndPull(t *testing.T) {
	f := startFleet(t, []float64{1, 1}, nil)
	reg := obs.New()
	reg.SetNode("router")
	r, err := NewRouter(RouterConfig{
		AuthorityAddr: f.daemons[0].addr,
		Budget:        5 * time.Second,
		Obs:           reg,
		Dial:          testDial,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.CreateFileSet("vol00"); err != nil {
		t.Fatal(err)
	}

	// Move the file set behind the router's back so the traced request
	// must reroute off the fenced donor mid-flight.
	from := f.auth.Map().Assign["vol00"]
	if _, err := f.auth.Assign("vol00", 1-from); err != nil {
		t.Fatal(err)
	}

	trace := reg.NextTraceID()
	parent := reg.NextSpanID()
	rec := sharedisk.Record{Size: 7}
	resp, err := r.Forward(wire.Request{
		Op: wire.OpCreate, FileSet: "vol00", Path: "/traced",
		Record: &rec, Trace: trace, Parent: parent,
	})
	if err != nil || resp.Err != "" {
		t.Fatalf("forward: %v / %s", err, resp.Err)
	}
	if resp.Trace != trace {
		t.Fatalf("response trace = %d, want the propagated %d", resp.Trace, trace)
	}

	var retry obs.Span
	for _, s := range reg.Spans.ByTrace(trace) {
		if s.Name == "route-retry" {
			retry = s
		}
	}
	if retry.Op != "wrong-owner" || retry.Server != from || retry.Node != "router" {
		t.Fatalf("route-retry span = %+v (want reason wrong-owner against daemon %d)", retry, from)
	}

	nodes := []TraceNode{
		{Name: "d0", Addr: f.daemons[0].addr},
		{Name: "d1", Addr: f.daemons[1].addr},
		{Name: "dead", Addr: "127.0.0.1:1"},
	}
	pulled := PullTrace(trace, nodes, testDial)
	if len(pulled) != 3 {
		t.Fatalf("pulled %d node traces", len(pulled))
	}
	if pulled[2].Err == "" || len(pulled[2].Spans) != 0 {
		t.Fatalf("dead hop = %+v, want an error and no spans", pulled[2])
	}
	wireSpans := 0
	for _, nt := range pulled[:2] {
		if nt.Err != "" {
			t.Fatalf("hop %s: %s", nt.Node, nt.Err)
		}
		if nt.Now.IsZero() || nt.PulledAt.IsZero() {
			t.Fatalf("hop %s missing clock sample: %+v", nt.Node, nt)
		}
		for _, s := range nt.Spans {
			if s.Name == "wire" && s.Trace == trace {
				wireSpans++
				if s.Parent != parent {
					t.Fatalf("wire span parent = %d, want %d", s.Parent, parent)
				}
			}
		}
	}
	// Both daemons saw the request: the donor rejected it (wrong-owner),
	// the new owner served it — both under the same trace.
	if wireSpans < 2 {
		t.Fatalf("found %d wire spans across the fleet, want both hops", wireSpans)
	}
	ft := obs.Stitch(trace, pulled)
	if len(ft.Spans) == 0 || len(ft.Hops) != 3 {
		t.Fatalf("stitched = %d spans, %d hops", len(ft.Spans), len(ft.Hops))
	}
}
