package fleet

import (
	"sync"
	"time"

	"anufs/internal/obs"
	"anufs/internal/wire"
)

// TraceNode names one pull target for PullTrace: any process speaking the
// wire protocol's trace-pull op (daemon, gateway, standby receiver).
type TraceNode struct {
	// Name is the fallback label when the node reports no identity.
	Name string
	Addr string
}

// DefaultTracePullTimeout bounds one node's pull; unreachable nodes must
// not stall the whole stitch.
const DefaultTracePullTimeout = 2 * time.Second

// PullTrace fetches one trace's spans from every node concurrently and
// returns the per-node results in input order, ready for obs.Stitch. A
// node that cannot be reached (or refuses the op) yields a NodeTrace with
// Err set — the stitcher reports it as a possibly-missing hop instead of
// silently narrowing the timeline. dial overrides the transport (nil uses
// wire.Dial with the default pull timeout).
func PullTrace(trace uint64, nodes []TraceNode, dial func(addr string) (*wire.Client, error)) []obs.NodeTrace {
	if dial == nil {
		dial = func(addr string) (*wire.Client, error) {
			c, err := wire.Dial(addr)
			if err != nil {
				return nil, err
			}
			c.SetTimeout(DefaultTracePullTimeout)
			return c, nil
		}
	}
	out := make([]obs.NodeTrace, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n TraceNode) {
			defer wg.Done()
			out[i] = pullOne(trace, n, dial)
		}(i, n)
	}
	wg.Wait()
	return out
}

func pullOne(trace uint64, n TraceNode, dial func(addr string) (*wire.Client, error)) obs.NodeTrace {
	nt := obs.NodeTrace{Node: n.Name, Addr: n.Addr}
	c, err := dial(n.Addr)
	if err != nil {
		nt.Err = err.Error()
		return nt
	}
	defer c.Close()
	t0 := time.Now()
	spans, node, nowNano, err := c.TracePull(trace)
	t1 := time.Now()
	if err != nil {
		nt.Err = err.Error()
		return nt
	}
	nt.Spans = spans
	if node != "" {
		nt.Node = node
	}
	// The remote clock sample maps to the local midpoint of the pull's
	// round trip: the best single-exchange skew estimate (error ≤ RTT/2).
	nt.Now = time.Unix(0, nowNano)
	nt.PulledAt = t0.Add(t1.Sub(t0) / 2)
	return nt
}
