// Package fleet shards anufs across N independent anufsd processes: each
// daemon owns a subset of file sets, an epoch-numbered cluster map derived
// from the ANU mapper (internal/placement) is the routing plane, and file
// sets move between daemons by live handoff — the donor drains and flushes,
// the recipient adopts the image, and the donor fences its copy.
//
// Roles: the Authority (hosted by one daemon) owns the map and orchestrates
// handoffs; every daemon runs a Member that fences wire operations against
// the map and serves the fleet ops; clients route through a Router that
// caches the map and refetches on wrong-owner rejections.
package fleet

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"anufs/internal/core"
	"anufs/internal/interval"
	"anufs/internal/placement"
	"anufs/internal/wire"
)

// DefaultHandoffTimeout bounds one donor handoff call (drain + flush +
// transfer + adopt) as seen by the authority.
const DefaultHandoffTimeout = 60 * time.Second

// AuthorityConfig parameterizes the map authority.
type AuthorityConfig struct {
	// Daemons is the static fleet: every anufsd process, with address and
	// relative speed. Fleet membership is fixed for a deployment; changing
	// it means restarting with a new -fleet-authority list (dynamic
	// join/leave is future work, see DESIGN.md §12).
	Daemons []placement.DaemonInfo
	// FileSets seeds the initial assignment (epoch 1), placed by the ANU
	// mapper over the daemon IDs with speed-proportional shares.
	FileSets []string
	// Core configures the ANU mapper; zero value takes core.Defaults().
	Core core.Config
	// Dial overrides how the authority reaches daemons (tests inject
	// failures); nil uses wire.Dial with DefaultHandoffTimeout.
	Dial func(addr string) (*wire.Client, error)
}

// Authority owns the cluster map: it computes assignments from the ANU
// mapper, bumps the epoch on every change, and orchestrates live handoffs
// with the donor daemons. Exactly one daemon in a fleet hosts it.
type Authority struct {
	dial func(addr string) (*wire.Client, error)

	// cur holds the current *placement.ClusterMap. It is an atomic, not
	// guarded by mu, so Map() never blocks on an in-flight reconfiguration
	// — a handoff whose recipient is the authority daemon itself reads the
	// map from inside the RPC the authority is waiting on.
	cur atomic.Value

	// mu serializes reconfigurations (assign/rebalance/handoffs).
	mu      sync.Mutex
	cfg     AuthorityConfig
	mapper  *core.Mapper
	daemons map[int]placement.DaemonInfo
	// override pins file sets to explicit daemons (anufsctl assign); a
	// rebalance clears it and returns to pure ANU placement.
	override map[string]int
}

// NewAuthority builds the authority and its epoch-1 map. No daemons are
// contacted; the initial assignment is what the daemons themselves fetch
// (or compute locally, for the authority daemon) at startup.
func NewAuthority(cfg AuthorityConfig) (*Authority, error) {
	if len(cfg.Daemons) == 0 {
		return nil, fmt.Errorf("fleet: authority needs at least one daemon")
	}
	if cfg.Core.Gamma == 0 {
		cfg.Core = core.Defaults()
	}
	daemons := make(map[int]placement.DaemonInfo, len(cfg.Daemons))
	ids := make([]int, 0, len(cfg.Daemons))
	for _, d := range cfg.Daemons {
		if _, dup := daemons[d.ID]; dup {
			return nil, fmt.Errorf("fleet: duplicate daemon id %d", d.ID)
		}
		daemons[d.ID] = d
		ids = append(ids, d.ID)
	}
	sort.Ints(ids)
	mapper, err := core.NewMapper(cfg.Core, ids)
	if err != nil {
		return nil, err
	}
	a := &Authority{
		dial:     cfg.Dial,
		cfg:      cfg,
		mapper:   mapper,
		daemons:  daemons,
		override: map[string]int{},
	}
	if a.dial == nil {
		a.dial = func(addr string) (*wire.Client, error) {
			c, err := wire.Dial(addr)
			if err != nil {
				return nil, err
			}
			c.SetTimeout(DefaultHandoffTimeout)
			return c, nil
		}
	}
	if err := a.rescaleBySpeed(); err != nil {
		return nil, err
	}
	cm := a.composeLocked(1, cfg.FileSets)
	if err := cm.Validate(); err != nil {
		return nil, err
	}
	a.cur.Store(cm)
	return a, nil
}

// rescaleBySpeed sets the mapper shares proportional to daemon speeds — the
// paper's heterogeneity-aware starting point (the live tuner would refine
// from here; the fleet map starts at the speed prior).
func (a *Authority) rescaleBySpeed() error {
	var total float64
	for _, d := range a.daemons {
		total += d.Speed
	}
	ids := make([]int, 0, len(a.daemons))
	for id := range a.daemons {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	target := make(map[int]uint64, len(ids))
	var sum uint64
	fastest, fastestSpeed := ids[0], 0.0
	for _, id := range ids {
		sp := a.daemons[id].Speed
		share := uint64(float64(interval.Half) * (sp / total))
		target[id] = share
		sum += share
		if sp > fastestSpeed {
			fastest, fastestSpeed = id, sp
		}
	}
	// Integer truncation leaves a remainder; the fastest daemon absorbs it
	// so the shares sum exactly to Half (Rescale's invariant).
	target[fastest] += interval.Half - sum
	return a.mapper.Rescale(target)
}

// composeLocked builds a map at the given epoch assigning fileSets by the
// mapper plus overrides. Caller holds mu (or is in the constructor).
func (a *Authority) composeLocked(epoch uint64, fileSets []string) *placement.ClusterMap {
	cm := &placement.ClusterMap{
		Epoch:   epoch,
		Daemons: make([]placement.DaemonInfo, 0, len(a.daemons)),
		Assign:  make(map[string]int, len(fileSets)),
	}
	for _, d := range a.daemons {
		cm.Daemons = append(cm.Daemons, d)
	}
	sort.Slice(cm.Daemons, func(i, j int) bool { return cm.Daemons[i].ID < cm.Daemons[j].ID })
	for _, fs := range fileSets {
		if id, ok := a.override[fs]; ok {
			cm.Assign[fs] = id
			continue
		}
		cm.Assign[fs] = a.mapper.Owner(fs)
	}
	return cm
}

// Map returns the current cluster map (immutable; callers must not
// mutate). Never blocks, even mid-reconfiguration.
func (a *Authority) Map() *placement.ClusterMap {
	return a.cur.Load().(*placement.ClusterMap)
}

// Epoch returns the current map epoch.
func (a *Authority) Epoch() uint64 { return a.Map().Epoch }

// fileSetsLocked lists the currently assigned file sets.
func (a *Authority) fileSetsLocked() []string {
	cur := a.Map()
	out := make([]string, 0, len(cur.Assign))
	for fs := range cur.Assign {
		out = append(out, fs)
	}
	sort.Strings(out)
	return out
}

// Assign pins a file set to a daemon (daemon = -1 places it by the ANU
// mapper). A new file set just joins the map; moving an owned file set runs
// a live handoff with the current owner before the new map commits. Returns
// the resulting epoch.
func (a *Authority) Assign(fileSet string, daemon int) (uint64, error) {
	if fileSet == "" {
		return 0, fmt.Errorf("fleet: assign needs a file set")
	}
	a.mu.Lock()
	if daemon == -1 {
		daemon = a.mapper.Owner(fileSet)
	}
	if _, ok := a.daemons[daemon]; !ok {
		a.mu.Unlock()
		return 0, fmt.Errorf("fleet: unknown daemon %d", daemon)
	}
	cur := a.Map()
	from, owned := cur.Assign[fileSet]
	if owned && from == daemon {
		a.mu.Unlock()
		return cur.Epoch, nil // already there
	}
	a.override[fileSet] = daemon
	fileSets := a.fileSetsLocked()
	if !owned {
		fileSets = append(fileSets, fileSet)
		sort.Strings(fileSets)
		// A brand-new file set needs no handoff: commit and publish.
		cm := a.composeLocked(cur.Epoch+1, fileSets)
		a.cur.Store(cm)
		a.mu.Unlock()
		a.publish(cm)
		return cm.Epoch, nil
	}
	candidate := a.composeLocked(cur.Epoch+1, fileSets)
	err := a.moveLocked(candidate, fileSet, from, daemon)
	cm := a.Map()
	a.mu.Unlock()
	if err != nil {
		return cm.Epoch, err
	}
	a.publish(cm)
	return cm.Epoch, nil
}

// Rebalance clears manual pins and recomputes the whole assignment from the
// speed-proportional ANU mapper, handing off every file set whose owner
// changes (one epoch bump per move, sequentially — a failed move leaves the
// map at its last good epoch). Returns the final epoch and the first error.
func (a *Authority) Rebalance() (uint64, error) {
	a.mu.Lock()
	a.override = map[string]int{}
	fileSets := a.fileSetsLocked()
	// Compute the pure-ANU target and the moves it implies.
	type move struct {
		fs       string
		from, to int
	}
	var moves []move
	for _, fs := range fileSets {
		want := a.mapper.Owner(fs)
		if have := a.Map().Assign[fs]; have != want {
			moves = append(moves, move{fs: fs, from: have, to: want})
		}
	}
	var firstErr error
	for _, mv := range moves {
		cur := a.Map()
		candidate := a.composeLocked(cur.Epoch+1, fileSets)
		// composeLocked already assigns by mapper (overrides cleared), but
		// earlier failed moves must stay with their current owner.
		for _, other := range moves {
			if other.fs != mv.fs {
				candidate.Assign[other.fs] = cur.Assign[other.fs]
			}
		}
		if err := a.moveLocked(candidate, mv.fs, mv.from, mv.to); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	cm := a.Map()
	a.mu.Unlock()
	a.publish(cm)
	return cm.Epoch, firstErr
}

// moveLocked runs one live handoff under candidate (epoch already bumped):
// the donor fences itself with the candidate map, drains, flushes, and
// transfers the file set to the recipient, which adopts map and image in
// one frame. Only on success does the candidate become the current map.
// Called with mu held; the handoff itself runs over the wire while holding
// mu — the authority serializes reconfigurations by design.
func (a *Authority) moveLocked(candidate *placement.ClusterMap, fileSet string, from, to int) error {
	donor, ok := a.daemons[from]
	if !ok {
		return fmt.Errorf("fleet: donor daemon %d unknown", from)
	}
	recipient, ok := a.daemons[to]
	if !ok {
		return fmt.Errorf("fleet: recipient daemon %d unknown", to)
	}
	encoded, err := candidate.Encode()
	if err != nil {
		return err
	}
	c, err := a.dial(donor.Addr)
	if err != nil {
		return fmt.Errorf("fleet: dial donor %d (%s): %w", from, donor.Addr, err)
	}
	defer c.Close()
	if err := c.Handoff(candidate.Epoch, fileSet, recipient.Addr, encoded); err != nil {
		// The donor rolled itself back and keeps serving under the old
		// epoch; the candidate map is discarded.
		return fmt.Errorf("fleet: handoff of %q from %d to %d: %w", fileSet, from, to, err)
	}
	a.cur.Store(candidate)
	return nil
}

// publish pushes the map to every daemon, best effort and in parallel —
// member polling (and wrong-owner refetches) is the correctness backstop;
// the push just makes convergence immediate.
func (a *Authority) publish(cm *placement.ClusterMap) {
	encoded, err := cm.Encode()
	if err != nil {
		return
	}
	var wg sync.WaitGroup
	for _, d := range cm.Daemons {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			c, err := a.dial(addr)
			if err != nil {
				return
			}
			defer c.Close()
			_ = c.Adopt(cm.Epoch, "", nil, encoded) // empty FileSet = map-only push
		}(d.Addr)
	}
	wg.Wait()
}
