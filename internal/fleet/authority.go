// Package fleet shards anufs across N independent anufsd processes: each
// daemon owns a subset of file sets, an epoch-numbered cluster map derived
// from the ANU mapper (internal/placement) is the routing plane, and file
// sets move between daemons by live handoff — the donor drains and flushes,
// the recipient adopts the image, and the donor fences its copy.
//
// Roles: the Authority (hosted by one daemon) owns the map and orchestrates
// handoffs; every daemon runs a Member that fences wire operations against
// the map and serves the fleet ops; clients route through a Router that
// caches the map and refetches on wrong-owner rejections.
//
// Membership is dynamic: daemons join and leave over the wire (OpJoin,
// OpLeave), renew liveness leases with OpHeartbeat, and a daemon whose
// lease lapses is failed over — the authority moves its file sets to new
// owners that replay the victim's journal tail from shared disk before
// serving (OpTakeover), so acknowledged writes survive kill -9. The map
// itself can be journaled (AuthorityConfig.Persist) and log-shipped to a
// standby authority that resumes it after promotion (Resume/EpochFloor).
package fleet

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"anufs/internal/core"
	"anufs/internal/election"
	"anufs/internal/interval"
	"anufs/internal/metrics"
	"anufs/internal/placement"
	"anufs/internal/volume"
	"anufs/internal/wire"
)

// DefaultHandoffTimeout bounds one donor handoff call (drain + flush +
// transfer + adopt) as seen by the authority.
const DefaultHandoffTimeout = 60 * time.Second

// DefaultDialTimeout bounds the TCP connect to a handoff donor, so a dead
// daemon costs seconds (and trips the rebalance circuit breaker), not the
// full handoff timeout.
const DefaultDialTimeout = 5 * time.Second

// DefaultPublishTimeout is the per-daemon dial + call deadline on the
// publish path; DefaultPublishWait caps how long one publish round blocks
// its caller (stragglers keep trying in the background up to their own
// deadlines — member polling is the convergence backstop). Takeovers dial
// with the same short connect deadline but then widen the call deadline to
// DefaultHandoffTimeout: the recipient replays the victim's whole journal
// before replying, which a publish-sized deadline would misread as a
// refusal on any non-trivial journal.
const (
	DefaultPublishTimeout = 1 * time.Second
	DefaultPublishWait    = 2 * time.Second
)

// PromotionEpochJump is how far a promoted standby authority advances the
// epoch past the last map it saw. The primary may have committed (and even
// acted on) epochs the ship stream never delivered; the jump keeps every
// epoch the promoted authority issues strictly above anything the dead
// primary could have published.
const PromotionEpochJump = 1000

// AuthorityConfig parameterizes the map authority.
type AuthorityConfig struct {
	// Daemons seeds the fleet: every anufsd process known at startup, with
	// address and relative speed (> 0). Daemons added later join over the
	// wire (OpJoin); ignored when Resume is set.
	Daemons []placement.DaemonInfo
	// FileSets seeds the initial assignment, placed by the ANU mapper over
	// the daemon IDs with speed-proportional shares. Ignored when Resume is
	// set.
	FileSets []string
	// Core configures the ANU mapper; zero value takes core.Defaults().
	Core core.Config
	// SelfID is the ID of the daemon hosting this authority — published in
	// the map's Authority field so members and routers can find the
	// authority after a standby promotion. Defaults to 0, the historical
	// convention.
	SelfID int
	// Dial overrides how the authority reaches handoff donors (tests inject
	// failures); nil uses wire.DialTimeout(addr, DefaultDialTimeout) with
	// DefaultHandoffTimeout per call.
	Dial func(addr string) (*wire.Client, error)
	// DialFast overrides the short-deadline dialer used for map publishes
	// and failover takeovers (takeovers widen the per-call deadline after
	// the dial — only the connect stays fast); nil falls back to Dial when
	// that is injected (tests see every outbound connection), else to
	// wire.DialTimeout(addr, PublishTimeout).
	DialFast func(addr string) (*wire.Client, error)
	// PublishTimeout and PublishWait default to the package constants.
	PublishTimeout time.Duration
	PublishWait    time.Duration
	// Lease enables heartbeat failure detection when > 0: a daemon that
	// does not heartbeat within one lease (after StartupGrace) is declared
	// dead and failed over. Zero disables the detector — membership changes
	// only through explicit join/leave, the pre-elastic behavior.
	Lease time.Duration
	// StartupGrace suppresses failure detection for this long after Start,
	// covering the window before members begin heartbeating. Defaults to
	// 4x Lease.
	StartupGrace time.Duration
	// Persist, when non-nil, is called with every committed map before it
	// becomes current — the replication hook (anufsd journals the map as a
	// pseudo file set, which the existing log shipper then carries to the
	// standby). Persist failures are counted, not fatal: replication
	// degrades, serving does not.
	Persist func(cm *placement.ClusterMap) error
	// PersistVolumes is Persist's analogue for the volume registry: called
	// with every mutated registry snapshot (anufsd journals it as the
	// __volumes/registry pseudo file set, which log shipping carries to the
	// standby). Failures are counted, not fatal.
	PersistVolumes func(vols []volume.Info, version uint64) error
	// Resume, when non-nil, seeds membership and assignment from a
	// previously persisted map instead of Daemons/FileSets — the promoted
	// standby's path back to authority.
	Resume *placement.ClusterMap
	// ResumeVolumes seeds the volume registry from a previously persisted
	// snapshot (the __volumes/registry image a standby replicated), so
	// quotas and weights survive authority failover. Empty starts fresh
	// with only the default volume.
	ResumeVolumes        []volume.Info
	ResumeVolumesVersion uint64
	// EpochFloor forces the first committed epoch strictly above this
	// value (promotion sets Resume.Epoch + PromotionEpochJump).
	EpochFloor uint64
	// AnnounceOnStart publishes the current map once, asynchronously, when
	// Start runs — how a promoted standby tells surviving daemons where the
	// authority lives now.
	AnnounceOnStart bool
}

// Authority owns the cluster map: it computes assignments from the ANU
// mapper, bumps the epoch on every change, and orchestrates live handoffs
// with the donor daemons. Exactly one daemon in a fleet hosts it.
type Authority struct {
	dial     func(addr string) (*wire.Client, error)
	dialFast func(addr string) (*wire.Client, error)

	// cur holds the current *placement.ClusterMap. It is an atomic, not
	// guarded by mu, so Map() never blocks on an in-flight reconfiguration
	// — a handoff whose recipient is the authority daemon itself reads the
	// map from inside the RPC the authority is waiting on.
	cur atomic.Value

	counters *metrics.CounterSet
	// elector tracks member liveness leases (nil when Lease == 0).
	elector *election.Elector
	// vols is the authoritative volume registry (its own lock; mutations
	// bump the map epoch through volumesChanged).
	vols *volume.Registry

	// mu serializes reconfigurations (assign/rebalance/join/leave/failover).
	mu      sync.Mutex
	cfg     AuthorityConfig
	mapper  *core.Mapper
	daemons map[int]placement.DaemonInfo
	// issued is the highest epoch ever composed into a candidate map,
	// committed or not (guarded by mu). Epochs are reserved, never reused:
	// an abandoned candidate may still have been installed by its
	// recipient (the RPC timed out after the server-side adopt), so a
	// later map with different contents must carry a strictly higher
	// epoch or that recipient would never converge to it.
	issued uint64
	// dirs maps daemon ID → its journal directory on the shared disk, as
	// reported by join/heartbeat — what a takeover recipient replays when
	// the daemon dies. Empty means volatile: failover adopts empty images.
	// Guarded by dirsMu, not mu, so the heartbeat path never queues behind
	// a reconfiguration holding mu across network RPCs (dirsMu nests
	// inside mu; never take mu while holding dirsMu).
	dirsMu  sync.Mutex
	dirs    map[int]string
	started time.Time

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewAuthority builds the authority and its initial map. No daemons are
// contacted; the initial assignment is what the daemons themselves fetch
// (or compute locally, for the authority daemon) at startup.
func NewAuthority(cfg AuthorityConfig) (*Authority, error) {
	seed := cfg.Daemons
	var epoch0 uint64
	if cfg.Resume != nil {
		if err := cfg.Resume.Validate(); err != nil {
			return nil, fmt.Errorf("fleet: resume map: %w", err)
		}
		seed = cfg.Resume.Daemons
		epoch0 = cfg.Resume.Epoch
	}
	if len(seed) == 0 {
		return nil, fmt.Errorf("fleet: authority needs at least one daemon")
	}
	if cfg.Core.Gamma == 0 {
		cfg.Core = core.Defaults()
	}
	if cfg.PublishTimeout <= 0 {
		cfg.PublishTimeout = DefaultPublishTimeout
	}
	if cfg.PublishWait <= 0 {
		cfg.PublishWait = DefaultPublishWait
	}
	if cfg.StartupGrace <= 0 {
		cfg.StartupGrace = 4 * cfg.Lease
	}
	daemons := make(map[int]placement.DaemonInfo, len(seed))
	ids := make([]int, 0, len(seed))
	for _, d := range seed {
		if _, dup := daemons[d.ID]; dup {
			return nil, fmt.Errorf("fleet: duplicate daemon id %d", d.ID)
		}
		// !(x > 0) rather than x <= 0: NaN speeds must be rejected too, or
		// rescaleBySpeed feeds uint64(NaN) shares to the mapper.
		if !(d.Speed > 0) {
			return nil, fmt.Errorf("fleet: daemon %d speed %v must be > 0", d.ID, d.Speed)
		}
		daemons[d.ID] = d
		ids = append(ids, d.ID)
	}
	sort.Ints(ids)
	mapper, err := core.NewMapper(cfg.Core, ids)
	if err != nil {
		return nil, err
	}
	a := &Authority{
		dial:     cfg.Dial,
		dialFast: cfg.DialFast,
		counters: metrics.NewCounterSet(),
		vols:     volume.NewRegistry(),
		cfg:      cfg,
		mapper:   mapper,
		daemons:  daemons,
		dirs:     map[int]string{},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if len(cfg.ResumeVolumes) > 0 {
		a.vols.Install(cfg.ResumeVolumes, cfg.ResumeVolumesVersion)
	}
	if cfg.Lease > 0 {
		a.elector = election.New(cfg.Lease, nil)
	}
	if a.dial == nil {
		a.dial = func(addr string) (*wire.Client, error) {
			c, err := wire.DialTimeout(addr, DefaultDialTimeout)
			if err != nil {
				return nil, err
			}
			c.SetTimeout(DefaultHandoffTimeout)
			return c, nil
		}
	}
	if a.dialFast == nil {
		if cfg.Dial != nil {
			a.dialFast = cfg.Dial
		} else {
			a.dialFast = func(addr string) (*wire.Client, error) {
				return wire.DialTimeout(addr, a.cfg.PublishTimeout)
			}
		}
	}
	if err := a.rescaleBySpeed(); err != nil {
		return nil, err
	}
	assign := map[string]int{}
	if cfg.Resume != nil {
		for fs, id := range cfg.Resume.Assign {
			assign[fs] = id
		}
	} else {
		for _, fs := range cfg.FileSets {
			assign[fs] = a.mapper.Owner(fs)
		}
	}
	epoch := epoch0 + 1
	if epoch <= cfg.EpochFloor {
		epoch = cfg.EpochFloor + 1
	}
	a.issued = epoch
	cm := a.composeLocked(epoch, assign)
	if err := cm.Validate(); err != nil {
		return nil, err
	}
	a.commitLocked(cm)
	return a, nil
}

// nextEpochLocked reserves a fresh epoch for one candidate map, strictly
// above the current map and every candidate ever composed — committed or
// abandoned. Failed reconfigurations leave gaps in the epoch sequence;
// consumers only need monotonicity. Caller holds mu.
func (a *Authority) nextEpochLocked() uint64 {
	e := a.Map().Epoch
	if a.issued > e {
		e = a.issued
	}
	e++
	a.issued = e
	return e
}

// Start launches the heartbeat failure detector (when Lease > 0) and the
// optional announce publish. Idempotent.
func (a *Authority) Start() {
	a.startOnce.Do(func() {
		if a.cfg.AnnounceOnStart {
			go a.publish(a.Map())
		}
		if a.elector == nil {
			close(a.done)
			return
		}
		a.mu.Lock()
		// Everyone starts with a full lease; members renew via OpHeartbeat.
		for id := range a.daemons {
			a.elector.Heartbeat(id)
		}
		a.started = time.Now()
		a.mu.Unlock()
		go a.detectLoop()
	})
}

// Stop terminates the failure detector. Safe to call without Start.
func (a *Authority) Stop() {
	a.stopOnce.Do(func() { close(a.stop) })
	a.startOnce.Do(func() { close(a.done) }) // Start never ran: nothing to wait for
	<-a.done
}

// detectLoop reaps daemons whose liveness lease lapsed and fails over
// their file sets. The authority daemon vouches for itself each tick — it
// is running this loop, so it is alive by construction.
func (a *Authority) detectLoop() {
	defer close(a.done)
	tick := a.cfg.Lease / 4
	if tick <= 0 {
		tick = 250 * time.Millisecond
	}
	for {
		select {
		case <-a.stop:
			return
		case <-time.After(tick):
		}
		a.elector.Heartbeat(a.cfg.SelfID)
		if time.Since(a.started) < a.cfg.StartupGrace {
			continue
		}
		live := map[int]bool{}
		for _, id := range a.elector.Members() {
			live[id] = true
		}
		a.mu.Lock()
		var dead []int
		for id := range a.daemons {
			if id != a.cfg.SelfID && !live[id] {
				dead = append(dead, id)
			}
		}
		sort.Ints(dead)
		for _, id := range dead {
			a.failoverLocked(id)
		}
		cm := a.Map()
		a.mu.Unlock()
		if len(dead) > 0 {
			a.publish(cm)
		}
	}
}

// rescaleBySpeed sets the mapper shares proportional to daemon speeds — the
// paper's heterogeneity-aware starting point (the live tuner would refine
// from here; the fleet map starts at the speed prior). The share set is the
// mapper's current membership, which during a leave/failover excludes a
// daemon still present in the map.
func (a *Authority) rescaleBySpeed() error {
	ids := a.mapper.Servers()
	sort.Ints(ids)
	if len(ids) == 0 {
		return fmt.Errorf("fleet: no daemons to rescale")
	}
	var total float64
	for _, id := range ids {
		total += a.daemons[id].Speed
	}
	if !(total > 0) {
		// NaN or zero total would turn every share into uint64(NaN) garbage.
		return fmt.Errorf("fleet: total daemon speed %v must be > 0", total)
	}
	target := make(map[int]uint64, len(ids))
	var sum uint64
	fastest, fastestSpeed := ids[0], 0.0
	for _, id := range ids {
		sp := a.daemons[id].Speed
		share := uint64(float64(interval.Half) * (sp / total))
		target[id] = share
		sum += share
		if sp > fastestSpeed {
			fastest, fastestSpeed = id, sp
		}
	}
	// Integer truncation leaves a remainder; the fastest daemon absorbs it
	// so the shares sum exactly to Half (Rescale's invariant).
	target[fastest] += interval.Half - sum
	return a.mapper.Rescale(target)
}

// composeLocked builds a map at the given epoch carrying an explicit
// assignment (copied). The daemon set is the membership at call time;
// assignment decisions are the caller's — compose never consults the
// mapper, so membership changes cannot silently move file sets without the
// handoff/takeover that makes the move safe. Caller holds mu (or is in the
// constructor).
func (a *Authority) composeLocked(epoch uint64, assign map[string]int) *placement.ClusterMap {
	cm := &placement.ClusterMap{
		Epoch:     epoch,
		Daemons:   make([]placement.DaemonInfo, 0, len(a.daemons)),
		Assign:    make(map[string]int, len(assign)),
		Authority: a.cfg.SelfID,
	}
	for _, d := range a.daemons {
		cm.Daemons = append(cm.Daemons, d)
	}
	sort.Slice(cm.Daemons, func(i, j int) bool { return cm.Daemons[i].ID < cm.Daemons[j].ID })
	for fs, id := range assign {
		cm.Assign[fs] = id
	}
	return cm
}

// commitLocked makes cm the current map, persisting it first when a
// Persist hook is set (the replication path). A persist failure is counted
// and the commit proceeds: the fleet must keep reconfiguring even when the
// map journal is sick.
func (a *Authority) commitLocked(cm *placement.ClusterMap) {
	if a.cfg.Persist != nil {
		if err := a.cfg.Persist(cm); err != nil {
			a.counters.Add(CtrPersistFailures, 1)
		}
	}
	a.cur.Store(cm)
}

// withAssign copies an assignment and reassigns one file set.
func withAssign(assign map[string]int, fileSet string, daemon int) map[string]int {
	out := make(map[string]int, len(assign)+1)
	for fs, id := range assign {
		out[fs] = id
	}
	out[fileSet] = daemon
	return out
}

// Map returns the current cluster map (immutable; callers must not
// mutate). Never blocks, even mid-reconfiguration.
func (a *Authority) Map() *placement.ClusterMap {
	return a.cur.Load().(*placement.ClusterMap)
}

// Epoch returns the current map epoch.
func (a *Authority) Epoch() uint64 { return a.Map().Epoch }

// Counters exposes the authority's counters (joins, leaves, failovers,
// publish stragglers) for tests and the obs registry.
func (a *Authority) Counters() *metrics.CounterSet { return a.counters }

// Join registers daemon id at addr with the given relative speed and
// journal directory, live — no fleet restart. A new daemon starts with no
// file sets (new placements and the next rebalance use it); a known daemon
// re-joining refreshes its record. Returns the resulting map.
func (a *Authority) Join(id int, addr string, speed float64, journalDir string) (*placement.ClusterMap, error) {
	if id < 0 {
		return nil, fmt.Errorf("fleet: join with negative daemon id %d", id)
	}
	if addr == "" {
		return nil, fmt.Errorf("fleet: daemon %d join without an address", id)
	}
	if !(speed > 0) {
		return nil, fmt.Errorf("fleet: daemon %d speed %v must be > 0", id, speed)
	}
	if a.elector != nil {
		a.elector.Heartbeat(id)
	}
	if journalDir != "" {
		a.dirsMu.Lock()
		a.dirs[id] = journalDir
		a.dirsMu.Unlock()
	}
	a.mu.Lock()
	prev, known := a.daemons[id]
	if known && prev.Addr == addr && prev.Speed == speed {
		// Idempotent re-join (e.g. a daemon restarting in place): nothing
		// changed, no epoch bump.
		cm := a.Map()
		a.mu.Unlock()
		return cm, nil
	}
	if !known {
		if err := a.mapper.AddServer(id, 0); err != nil {
			a.mu.Unlock()
			return nil, err
		}
	}
	a.daemons[id] = placement.DaemonInfo{ID: id, Addr: addr, Speed: speed}
	if err := a.rescaleBySpeed(); err != nil {
		if known {
			a.daemons[id] = prev
		} else {
			delete(a.daemons, id)
			_ = a.mapper.RemoveServer(id)
		}
		a.mu.Unlock()
		return nil, err
	}
	cur := a.Map()
	cm := a.composeLocked(a.nextEpochLocked(), cur.Assign)
	a.commitLocked(cm)
	a.counters.Add(CtrJoins, 1)
	a.mu.Unlock()
	a.publish(cm)
	return cm, nil
}

// Leave gracefully decommissions daemon id: every file set it owns is
// handed off (live — the leaver is up and draining) to the remaining
// daemons, then the daemon is dropped from the map. On a failed handoff
// the daemon stays a member with its remaining file sets.
func (a *Authority) Leave(id int) (uint64, error) {
	a.mu.Lock()
	if _, ok := a.daemons[id]; !ok {
		a.mu.Unlock()
		return 0, fmt.Errorf("fleet: unknown daemon %d", id)
	}
	if id == a.cfg.SelfID {
		a.mu.Unlock()
		return 0, fmt.Errorf("fleet: daemon %d hosts the authority and cannot leave", id)
	}
	// Take the leaver out of the placement function first so nothing new
	// lands on it, then drain what it owns.
	if err := a.mapper.RemoveServer(id); err != nil {
		a.mu.Unlock()
		return 0, err
	}
	if err := a.rescaleBySpeed(); err != nil {
		_ = a.mapper.AddServer(id, 0)
		_ = a.rescaleBySpeed()
		a.mu.Unlock()
		return 0, err
	}
	for _, fs := range a.Map().FileSetsOf(id) {
		to := a.mapper.Owner(fs)
		cur := a.Map()
		candidate := a.composeLocked(a.nextEpochLocked(), withAssign(cur.Assign, fs, to))
		if err := a.moveLocked(candidate, fs, id, to); err != nil {
			// Re-admit the leaver: it still owns this file set.
			_ = a.mapper.AddServer(id, 0)
			_ = a.rescaleBySpeed()
			cm := a.Map()
			a.mu.Unlock()
			a.publish(cm)
			return cm.Epoch, fmt.Errorf("fleet: leave of daemon %d: %w", id, err)
		}
	}
	cur := a.Map()
	delete(a.daemons, id)
	a.dirsMu.Lock()
	delete(a.dirs, id)
	a.dirsMu.Unlock()
	if a.elector != nil {
		a.elector.Leave(id)
	}
	cm := a.composeLocked(a.nextEpochLocked(), cur.Assign)
	a.commitLocked(cm)
	a.counters.Add(CtrLeaves, 1)
	a.mu.Unlock()
	a.publish(cm)
	return cm.Epoch, nil
}

// Heartbeat renews daemon id's liveness lease and refreshes its journal
// directory. Unknown daemons get a join-first error (wire.CodeJoinFirst) —
// how a member discovers it was declared dead (or that a promoted standby
// never heard of it) and re-registers.
//
// Deliberately never takes a.mu: reconfigurations (failover, leave,
// rebalance) hold mu across chains of network RPCs, and a heartbeat queued
// behind one would time out at the member's probe deadline — leases would
// lapse because the authority was busy, and the next detector tick would
// declare healthy members dead, cascading the failover. Membership is read
// from the atomic current map instead; during a reconfiguration that is
// the last committed state, which is exactly the view the member acts on.
func (a *Authority) Heartbeat(id int, addr string, speed float64, journalDir string) (uint64, error) {
	cm := a.Map()
	if _, ok := cm.Daemon(id); !ok {
		return 0, &wire.CodedError{Code: wire.CodeJoinFirst,
			Err: fmt.Errorf("fleet: unknown daemon %d: join first", id)}
	}
	if journalDir != "" {
		a.dirsMu.Lock()
		a.dirs[id] = journalDir
		a.dirsMu.Unlock()
	}
	_ = addr // membership changes go through Join; the heartbeat only renews
	_ = speed
	if a.elector != nil {
		a.elector.Heartbeat(id)
	}
	return cm.Epoch, nil
}

// JournalDir reports the journal directory a daemon last advertised
// (tests and anufsctl introspection).
func (a *Authority) JournalDir(id int) string {
	a.dirsMu.Lock()
	defer a.dirsMu.Unlock()
	return a.dirs[id]
}

// Assign pins a file set to a daemon (daemon = -1 places it by the ANU
// mapper). A new file set just joins the map; moving an owned file set runs
// a live handoff with the current owner before the new map commits. Returns
// the resulting epoch.
func (a *Authority) Assign(fileSet string, daemon int) (uint64, error) {
	if fileSet == "" {
		return 0, fmt.Errorf("fleet: assign needs a file set")
	}
	a.mu.Lock()
	cur := a.Map()
	from, owned := cur.Assign[fileSet]
	if !owned {
		if err := a.admitFileSetLocked(cur, fileSet); err != nil {
			a.mu.Unlock()
			return cur.Epoch, err
		}
	}
	if daemon == -1 {
		daemon = a.placeLocked(cur, fileSet, owned)
	}
	if _, ok := a.daemons[daemon]; !ok {
		a.mu.Unlock()
		return 0, fmt.Errorf("fleet: unknown daemon %d", daemon)
	}
	if owned && from == daemon {
		a.mu.Unlock()
		return cur.Epoch, nil // already there
	}
	candidate := a.composeLocked(a.nextEpochLocked(), withAssign(cur.Assign, fileSet, daemon))
	if !owned {
		// A brand-new file set needs no handoff: commit and publish.
		a.commitLocked(candidate)
		a.mu.Unlock()
		a.publish(candidate)
		return candidate.Epoch, nil
	}
	err := a.moveLocked(candidate, fileSet, from, daemon)
	cm := a.Map()
	a.mu.Unlock()
	if err != nil {
		return cm.Epoch, err
	}
	a.publish(cm)
	return cm.Epoch, nil
}

// Rebalance recomputes the whole assignment from the speed-proportional
// ANU mapper, handing off every file set whose owner changes (one epoch
// bump per move, sequentially — a failed move leaves the map at its last
// good epoch). A daemon that cannot be dialed is circuit-broken for the
// rest of the pass: its remaining moves are skipped and listed in the
// returned error, so one dead daemon costs one dial timeout, not one per
// move. Returns the final epoch and the first error.
func (a *Authority) Rebalance() (uint64, error) {
	a.mu.Lock()
	start := a.Map()
	fileSets := make([]string, 0, len(start.Assign))
	for fs := range start.Assign {
		fileSets = append(fileSets, fs)
	}
	sort.Strings(fileSets)
	type move struct {
		fs       string
		from, to int
	}
	var moves []move
	for _, fs := range fileSets {
		want := a.mapper.Owner(fs)
		if have := start.Assign[fs]; have != want {
			moves = append(moves, move{fs: fs, from: have, to: want})
		}
	}
	broken := map[int]bool{}
	var skipped []string
	var firstErr error
	for _, mv := range moves {
		if broken[mv.from] || broken[mv.to] {
			skipped = append(skipped, mv.fs)
			continue
		}
		cur := a.Map()
		candidate := a.composeLocked(a.nextEpochLocked(), withAssign(cur.Assign, mv.fs, mv.to))
		if err := a.moveLocked(candidate, mv.fs, mv.from, mv.to); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			var df *dialFailure
			if errors.As(err, &df) {
				broken[df.daemon] = true
			}
		}
	}
	cm := a.Map()
	a.mu.Unlock()
	a.publish(cm)
	if len(skipped) > 0 {
		return cm.Epoch, fmt.Errorf("fleet: rebalance skipped moves of %s (unreachable daemon): %w",
			strings.Join(skipped, ", "), firstErr)
	}
	return cm.Epoch, firstErr
}

// dialFailure marks a reconfiguration error caused by failing to reach a
// daemon at all (as opposed to a daemon that answered and refused) — the
// signal the rebalance circuit breaker keys on.
type dialFailure struct {
	daemon int
	err    error
}

func (e *dialFailure) Error() string { return e.err.Error() }
func (e *dialFailure) Unwrap() error { return e.err }

// moveLocked runs one live handoff under candidate (epoch already bumped):
// the donor fences itself with the candidate map, drains, flushes, and
// transfers the file set to the recipient, which adopts map and image in
// one frame. Only on success does the candidate become the current map.
// Called with mu held; the handoff itself runs over the wire while holding
// mu — the authority serializes reconfigurations by design.
func (a *Authority) moveLocked(candidate *placement.ClusterMap, fileSet string, from, to int) error {
	donor, ok := a.daemons[from]
	if !ok {
		return fmt.Errorf("fleet: donor daemon %d unknown", from)
	}
	recipient, ok := a.daemons[to]
	if !ok {
		return fmt.Errorf("fleet: recipient daemon %d unknown", to)
	}
	encoded, err := candidate.Encode()
	if err != nil {
		return err
	}
	c, err := a.dial(donor.Addr)
	if err != nil {
		return &dialFailure{daemon: from,
			err: fmt.Errorf("fleet: dial donor %d (%s): %w", from, donor.Addr, err)}
	}
	defer c.Close()
	if err := c.Handoff(candidate.Epoch, fileSet, recipient.Addr, encoded); err != nil {
		// The donor rolled itself back and keeps serving under the old
		// epoch; the candidate map is discarded.
		werr := fmt.Errorf("fleet: handoff of %q from %d to %d: %w", fileSet, from, to, err)
		if wire.ErrorCode(err) == wire.CodeDialRecipient {
			// The donor could not reach the recipient — same circuit as a
			// direct dial failure, attributed to the recipient.
			return &dialFailure{daemon: to, err: werr}
		}
		return werr
	}
	a.commitLocked(candidate)
	return nil
}

// failoverLocked moves a dead daemon's file sets to new owners. Each new
// owner replays the victim's journal tail from shared disk (OpTakeover)
// before serving, so every write the victim acknowledged durably survives;
// a victim that ran without a journal is adopted empty. The victim stays in
// the intermediate maps (its remaining assignments must validate) and is
// dropped in the final one; file sets no live daemon would take become
// unplaced rather than wedging the fleet. Caller holds mu and publishes the
// final map.
func (a *Authority) failoverLocked(victim int) {
	if _, ok := a.daemons[victim]; !ok {
		return
	}
	fileSets := a.Map().FileSetsOf(victim)
	a.counters.Add(CtrFailovers, 1)
	if err := a.mapper.RemoveServer(victim); err == nil {
		_ = a.rescaleBySpeed()
	}
	// Group the victim's file sets by their mapper-chosen new owner so each
	// recipient replays the victim's journal once, not once per file set.
	groups := map[int][]string{}
	for _, fs := range fileSets {
		owner := a.mapper.Owner(fs)
		groups[owner] = append(groups[owner], fs)
	}
	owners := make([]int, 0, len(groups))
	for id := range groups {
		owners = append(owners, id)
	}
	sort.Ints(owners)
	a.dirsMu.Lock()
	dir := a.dirs[victim]
	a.dirsMu.Unlock()
	adopted := 0
	for _, owner := range owners {
		fsList := groups[owner]
		sort.Strings(fsList)
		if a.takeoverLocked(owner, victim, fsList, dir) {
			adopted += len(fsList)
			continue
		}
		// The chosen owner is down too (or refused); try the other live
		// daemons in ID order before giving the file sets up as unplaced.
		for _, cand := range a.liveCandidatesLocked(victim, owner) {
			if a.takeoverLocked(cand, victim, fsList, dir) {
				adopted += len(fsList)
				break
			}
		}
	}
	// Final map: the victim is gone, and anything still assigned to it
	// (a group every candidate refused) is dropped to unplaced.
	cur := a.Map()
	assign := make(map[string]int, len(cur.Assign))
	unplaced := 0
	for fs, id := range cur.Assign {
		if id == victim {
			unplaced++
			continue
		}
		assign[fs] = id
	}
	delete(a.daemons, victim)
	a.dirsMu.Lock()
	delete(a.dirs, victim)
	a.dirsMu.Unlock()
	if a.elector != nil {
		a.elector.Leave(victim)
	}
	cm := a.composeLocked(a.nextEpochLocked(), assign)
	a.commitLocked(cm)
	a.counters.Add(CtrFailoverFileSets, int64(adopted))
	a.counters.Add(CtrFailoverUnplaced, int64(unplaced))
}

// takeoverLocked asks one daemon to adopt fileSets from a dead daemon,
// replaying the victim's journal directory first. Commits the candidate
// map on success.
func (a *Authority) takeoverLocked(owner, victim int, fileSets []string, journalDir string) bool {
	oinfo, ok := a.daemons[owner]
	if !ok || owner == victim {
		return false
	}
	cur := a.Map()
	assign := make(map[string]int, len(cur.Assign))
	for fs, id := range cur.Assign {
		assign[fs] = id
	}
	for _, fs := range fileSets {
		assign[fs] = owner
	}
	candidate := a.composeLocked(a.nextEpochLocked(), assign)
	encoded, err := candidate.Encode()
	if err != nil {
		return false
	}
	c, err := a.dialFast(oinfo.Addr)
	if err != nil {
		return false
	}
	defer c.Close()
	// The connect deadline stays publish-fast (a dead candidate refuses in
	// about a second), but the call itself replays the victim's journal and
	// installs the images before replying — give it a handoff-sized budget,
	// or every realistic takeover times out, the authority walks the
	// candidate list shedding the file sets to unplaced, and recipients
	// that finished server-side anyway are left owning abandoned maps.
	c.SetTimeout(DefaultHandoffTimeout)
	if err := c.Takeover(candidate.Epoch, fileSets, journalDir, encoded); err != nil {
		return false
	}
	a.commitLocked(candidate)
	return true
}

// liveCandidatesLocked lists takeover fallback recipients in ID order:
// known daemons that are neither the victim nor the already-tried owner
// and, when the detector is on, hold a live lease (the authority daemon is
// live by construction).
func (a *Authority) liveCandidatesLocked(victim, except int) []int {
	live := map[int]bool{a.cfg.SelfID: true}
	if a.elector != nil {
		for _, id := range a.elector.Members() {
			live[id] = true
		}
	}
	out := make([]int, 0, len(a.daemons))
	for id := range a.daemons {
		if id == victim || id == except {
			continue
		}
		if a.elector != nil && !live[id] {
			continue
		}
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// publish pushes the map to every daemon, best effort and in parallel.
// Member polling (and wrong-owner refetches) is the correctness backstop;
// the push just makes convergence immediate. The wait is hard-capped by
// PublishWait and each daemon by the fast dialer's deadline, so a dead
// daemon cannot stall an Assign/Rebalance/Join return.
func (a *Authority) publish(cm *placement.ClusterMap) {
	encoded, err := cm.Encode()
	if err != nil {
		return
	}
	// The volume registry piggybacks on every map push (members install it
	// only when the version is newer), so quota/weight changes converge on
	// the same machinery as the map.
	vols, vversion := a.vols.List()
	var wg sync.WaitGroup
	for _, d := range cm.Daemons {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			c, err := a.dialFast(addr)
			if err != nil {
				a.counters.Add(CtrPublishStragglers, 1)
				return
			}
			defer c.Close()
			// Empty FileSet = map-only push.
			_, err = c.Call(wire.Request{Op: wire.OpAdopt, Epoch: cm.Epoch, Map: encoded,
				Volumes: vols, VolumesVersion: vversion})
			if err != nil {
				a.counters.Add(CtrPublishStragglers, 1)
			}
		}(d.Addr)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(a.cfg.PublishWait):
		// Abandon the round; straggler goroutines finish (or time out on
		// their own deadlines) in the background.
	}
}
