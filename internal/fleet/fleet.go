package fleet

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"anufs/internal/journal"
	"anufs/internal/live"
	"anufs/internal/metrics"
	"anufs/internal/namespace"
	"anufs/internal/obs"
	"anufs/internal/placement"
	"anufs/internal/sharedisk"
	"anufs/internal/volume"
	"anufs/internal/wire"
)

// Fleet counter names exported through the obs registry.
const (
	CtrAdopts          = "fleet_adopts"
	CtrHandoffs        = "fleet_handoffs"
	CtrHandoffFailures = "fleet_handoff_failures"
	CtrWrongOwner      = "fleet_wrong_owner_rejects"
	CtrArrivingRejects = "fleet_arriving_rejects"
	CtrDropFailures    = "fleet_drop_failures"
	CtrMapRefreshes    = "fleet_map_refreshes"
	// Membership / failover counters (authority side unless noted).
	CtrJoins             = "fleet_joins"
	CtrLeaves            = "fleet_leaves"
	CtrFailovers         = "fleet_failovers"
	CtrFailoverFileSets  = "fleet_failover_filesets"
	CtrFailoverUnplaced  = "fleet_failover_unplaced"
	CtrPublishStragglers = "fleet_publish_stragglers"
	CtrPersistFailures   = "fleet_persist_failures"
	CtrTakeovers         = "fleet_takeovers"      // member: file sets adopted via failover
	CtrTakeoverEmpty     = "fleet_takeover_empty" // member: adopted with nothing to replay
	CtrRejoins           = "fleet_rejoins"        // member: heartbeat-triggered re-joins
	// Multi-tenant volume counters: quota denials (authority MaxFileSets +
	// member op-rate), registry persist failures (authority), registry
	// refreshes installed from pushes/polls (member).
	CtrQuotaDenials          = "fleet_quota_denials"
	CtrVolumePersistFailures = "fleet_volume_persist_failures"
	CtrVolumeRefreshes       = "fleet_volume_refreshes"
)

// unplacedMsg prefixes rejections of operations on file sets absent from
// the cluster map; the Router treats it as transient when its own (newer)
// map places the file set. The text is wire.UnplacedMsg so the client
// fallback for pre-code peers cannot drift from what the gate emits.
const unplacedMsg = wire.UnplacedMsg

// DefaultDrainTimeout bounds how long a donor waits for in-flight
// operations on a departing file set; DefaultPollInterval is the join-mode
// map poll cadence (a backstop behind the authority's eager pushes).
const (
	DefaultDrainTimeout = 10 * time.Second
	DefaultPollInterval = 500 * time.Millisecond
)

// MemberConfig parameterizes one daemon's fleet membership.
type MemberConfig struct {
	// ID is this daemon's ID in the cluster map.
	ID int
	// Cluster serves this daemon's file sets; Disk is its backing store
	// (the same one the cluster uses).
	Cluster *live.Cluster
	Disk    sharedisk.Disk
	// Authority is non-nil on the daemon that hosts the map authority.
	Authority *Authority
	// AuthorityAddr is the authority daemon's wire address (join mode);
	// empty on the authority daemon itself.
	AuthorityAddr string
	// StandbyAddr is the standby authority's address, tried by the poll
	// loop when the primary (map-advertised or AuthorityAddr) stops
	// answering. Pre-promotion the standby refuses fleet ops, so the
	// rotation naturally settles there only after it has taken over.
	StandbyAddr string
	// Addr is this daemon's own advertised wire address. Non-empty turns
	// the poll loop into a membership heartbeat: the daemon renews its
	// liveness lease at the authority instead of just probing the epoch,
	// and re-joins (with Speed and JournalDir below) when the authority
	// does not know it — a restart after being declared dead, or a
	// promoted standby resuming from a map from before this daemon joined.
	Addr string
	// Speed is this daemon's relative speed, reported on join (> 0;
	// defaults to 1). JournalDir is its journal directory on the shared
	// disk — what a surviving daemon replays if this one dies; empty means
	// volatile (failover adopts its file sets empty).
	Speed      float64
	JournalDir string
	// FenceAfter self-fences the gate when the authority has been
	// unreachable for this long (join mode only): a partitioned daemon
	// stops acknowledging writes its file sets' next owner will never see.
	// Zero disables self-fencing. Ordering matters: FenceAfter must be
	// strictly shorter than the authority's Lease (with margin for one
	// probe round trip), so the daemon stops acking BEFORE the authority
	// can replay its journal and reassign its file sets — a fence that
	// trips after the takeover re-opens the lost-write window it exists
	// to close. anufsd wires Lease/2.
	FenceAfter time.Duration
	// Obs receives the fleet gauges/histograms/counters; nil disables.
	Obs *obs.Registry
	// DrainTimeout and PollInterval default to the package constants.
	DrainTimeout time.Duration
	PollInterval time.Duration
	// Dial overrides outbound connections (tests); nil uses a
	// bounded-connect dial with a handoff-sized per-call timeout.
	Dial func(addr string) (*wire.Client, error)
	// DialFast overrides the short-deadline dialer the poll/heartbeat loop
	// uses; nil falls back to Dial when that is injected, else to
	// wire.DialTimeout with a probe-sized deadline.
	DialFast func(addr string) (*wire.Client, error)
}

// DefaultProbeTimeout bounds one poll-loop dial + call against an
// authority candidate address.
const DefaultProbeTimeout = 2 * time.Second

// Member is one daemon's fleet state: the cached cluster map, the
// ready/in-flight bookkeeping the wrong-owner fence needs, and the
// adopt/handoff endpoints. It implements wire.FleetHandler.
type Member struct {
	cfg      MemberConfig
	counters *metrics.CounterSet
	handoffH *obs.Histogram

	mu sync.Mutex
	// cur is the newest validated cluster map this daemon has seen.
	cur *placement.ClusterMap
	// lastContact is when the poll loop last heard from an authority
	// (join mode); the FenceAfter self-fence measures from here.
	lastContact time.Time
	// authIdx rotates through candidate authority addresses on probe
	// failures (map-advertised, configured primary, standby).
	authIdx int
	// ready marks file sets this daemon is actively serving; a file set
	// assigned here but not ready is either still being created or mid
	// adoption (clients get ErrArriving and retry).
	ready map[string]bool
	// inflight counts gate-admitted operations per file set, so a handoff
	// can drain them before the donor flushes — the zero-acked-write-loss
	// invariant: every acknowledged write either completed before the
	// flush or was never admitted.
	inflight map[string]int
	// buckets holds one op-rate token bucket per quota'd volume (nil entry
	// or absent = unlimited); rebuilt by applyVolumes.
	buckets map[string]*volume.Bucket

	// vols is this daemon's volume registry view — the authority's own
	// registry on the authority daemon, a replica installed from pushes and
	// polls elsewhere. Has its own lock.
	vols *volume.Registry

	stop chan struct{}
	done chan struct{}
}

// NewMember builds the member around the initial map (the authority
// daemon's own, or the one a joining daemon fetched at startup). File sets
// assigned to this daemon that already exist on its disk are ready
// immediately.
func NewMember(cfg MemberConfig, initial *placement.ClusterMap) (*Member, error) {
	if cfg.Cluster == nil || cfg.Disk == nil {
		return nil, fmt.Errorf("fleet: member needs a cluster and a disk")
	}
	if err := initial.Validate(); err != nil {
		return nil, err
	}
	if _, ok := initial.Daemon(cfg.ID); !ok {
		return nil, fmt.Errorf("fleet: daemon %d is not in the cluster map", cfg.ID)
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = DefaultPollInterval
	}
	if cfg.Speed == 0 {
		cfg.Speed = 1
	}
	if !(cfg.Speed > 0) {
		return nil, fmt.Errorf("fleet: daemon %d speed %v must be > 0", cfg.ID, cfg.Speed)
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string) (*wire.Client, error) {
			c, err := wire.DialTimeout(addr, DefaultDialTimeout)
			if err != nil {
				return nil, err
			}
			c.SetTimeout(DefaultHandoffTimeout)
			return c, nil
		}
		if cfg.DialFast == nil {
			cfg.DialFast = func(addr string) (*wire.Client, error) {
				return wire.DialTimeout(addr, DefaultProbeTimeout)
			}
		}
	}
	if cfg.DialFast == nil {
		cfg.DialFast = cfg.Dial
	}
	m := &Member{
		cfg:         cfg,
		counters:    metrics.NewCounterSet(),
		cur:         initial,
		lastContact: time.Now(),
		ready:       map[string]bool{},
		inflight:    map[string]int{},
		buckets:     map[string]*volume.Bucket{},
		vols:        volume.NewRegistry(),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	if cfg.Authority != nil {
		m.vols = cfg.Authority.vols
	}
	m.applyVolumes()
	onDisk := map[string]bool{}
	for _, fs := range cfg.Disk.FileSets() {
		onDisk[fs] = true
	}
	for _, fs := range initial.FileSetsOf(cfg.ID) {
		if onDisk[fs] {
			m.ready[fs] = true
		}
	}
	if cfg.Obs != nil {
		m.handoffH = cfg.Obs.Hist.Get("fleet_handoff_seconds", "")
		cfg.Obs.AddCounters(m.counters.Snapshot)
		if cfg.Authority != nil {
			cfg.Obs.AddCounters(cfg.Authority.counters.Snapshot)
		}
		cfg.Obs.AddGauges(func() []obs.Gauge {
			cm := m.CurrentMap()
			m.mu.Lock()
			nReady := len(m.ready)
			m.mu.Unlock()
			return []obs.Gauge{
				{Name: "fleet_map_epoch", Value: float64(cm.Epoch)},
				{Name: "fleet_ready_filesets", Value: float64(nReady)},
				{Name: "fleet_daemon_id", Value: float64(m.cfg.ID)},
			}
		})
	}
	return m, nil
}

// Start launches the join-mode poll loop (a no-op on the authority daemon,
// whose map is locally authoritative) and, on the authority daemon, the
// authority's failure detector.
func (m *Member) Start() {
	if m.cfg.Authority != nil {
		m.cfg.Authority.Start()
	}
	if m.cfg.AuthorityAddr == "" {
		close(m.done)
		return
	}
	go m.pollLoop()
}

// Stop terminates the poll loop (and the hosted authority's detector).
func (m *Member) Stop() {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	<-m.done
	if m.cfg.Authority != nil {
		m.cfg.Authority.Stop()
	}
}

// CurrentMap returns the newest map this daemon has seen.
func (m *Member) CurrentMap() *placement.ClusterMap {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cfg.Authority != nil {
		return m.cfg.Authority.Map()
	}
	return m.cur
}

// pollLoop refetches the map from the authority — the backstop behind
// eager pushes, and what converges a daemon that missed a push (e.g. it
// was restarting).
func (m *Member) pollLoop() {
	defer close(m.done)
	backoff := wire.NewBackoff(m.cfg.PollInterval, 10*m.cfg.PollInterval)
	for {
		select {
		case <-m.stop:
			return
		case <-time.After(backoff.Next()):
		}
		if m.pollOnce() {
			backoff.Reset()
		}
	}
}

// authorityCandidates lists the addresses where an authority might answer,
// preference first: the current map's advertised authority daemon, the
// configured primary, the configured standby. Duplicates are dropped.
func (m *Member) authorityCandidates() []string {
	var out []string
	seen := map[string]bool{}
	add := func(addr string) {
		if addr != "" && !seen[addr] {
			seen[addr] = true
			out = append(out, addr)
		}
	}
	if d, ok := m.CurrentMap().AuthorityDaemon(); ok {
		add(d.Addr)
	}
	add(m.cfg.AuthorityAddr)
	add(m.cfg.StandbyAddr)
	return out
}

// pollOnce probes one authority candidate — a membership heartbeat when
// this daemon advertises an address, a bare epoch probe otherwise — and
// fetches the full map when the authority's epoch is newer. A failed probe
// rotates to the next candidate (primary → standby → …). Returns true on a
// successful probe (fresh or not).
func (m *Member) pollOnce() bool {
	cands := m.authorityCandidates()
	if len(cands) == 0 {
		return false
	}
	m.mu.Lock()
	addr := cands[m.authIdx%len(cands)]
	m.mu.Unlock()
	ok := m.probe(addr)
	m.mu.Lock()
	if ok {
		m.authIdx = 0
		m.lastContact = time.Now()
	} else {
		m.authIdx++
	}
	m.mu.Unlock()
	return ok
}

// probe runs one dial + heartbeat/epoch exchange against addr.
func (m *Member) probe(addr string) bool {
	c, err := m.cfg.DialFast(addr)
	if err != nil {
		return false
	}
	defer c.Close()
	var epoch uint64
	if m.cfg.Addr != "" {
		epoch, err = c.Heartbeat(m.cfg.ID, m.cfg.Addr, m.cfg.Speed, m.cfg.JournalDir)
		if err != nil && wire.ErrorCode(err) == wire.CodeJoinFirst {
			// The authority does not know us: we were declared dead (and
			// restarted), or a promoted standby resumed a map from before we
			// joined. Re-register; the join reply carries the new map (and
			// the volume registry — a promoted standby's quotas must bind
			// here, before this daemon serves another op).
			jresp, jerr := c.Call(wire.Request{Op: wire.OpJoin, Daemon: m.cfg.ID,
				Addr: m.cfg.Addr, Speed: m.cfg.Speed, JournalDir: m.cfg.JournalDir})
			if jerr != nil {
				return false
			}
			cm, derr := placement.DecodeClusterMap(jresp.Map)
			if derr != nil {
				return false
			}
			m.counters.Add(CtrRejoins, 1)
			m.installVolumes(jresp.Volumes, jresp.VolumesVersion)
			m.adoptMap(cm)
			return true
		}
	} else {
		epoch, err = c.MapEpoch()
	}
	if err != nil {
		return false
	}
	if epoch <= m.CurrentMap().Epoch {
		return true
	}
	// Full fetch: the OpMap reply carries the volume registry alongside the
	// map, so one poll converges both.
	mresp, err := c.Call(wire.Request{Op: wire.OpMap})
	if err != nil {
		return false
	}
	cm, err := placement.DecodeClusterMap(mresp.Map)
	if err != nil {
		return false
	}
	m.installVolumes(mresp.Volumes, mresp.VolumesVersion)
	m.adoptMap(cm)
	return true
}

// adoptMap installs a validated map if it is newer than the current one.
func (m *Member) adoptMap(cm *placement.ClusterMap) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.adoptMapLocked(cm)
}

func (m *Member) adoptMapLocked(cm *placement.ClusterMap) {
	if cm.Epoch <= m.cur.Epoch {
		return
	}
	m.cur = cm
	m.counters.Add(CtrMapRefreshes, 1)
}

// Gate implements wire.FleetHandler: it admits or rejects one
// file-set-addressed operation under the current map. See the interface
// docs for the contract; the release closure is where a create-fileset
// marks its file set ready.
func (m *Member) Gate(op wire.Op, fileSet string) (func(), error) {
	m.mu.Lock()
	if m.cfg.FenceAfter > 0 && m.cfg.AuthorityAddr != "" && time.Since(m.lastContact) > m.cfg.FenceAfter {
		// Partitioned from every authority for longer than the fence
		// window: our file sets may already be serving elsewhere, so an ack
		// from here could be a write the new owner never sees. Stop
		// acknowledging anything until a probe succeeds.
		since := time.Since(m.lastContact).Round(time.Millisecond)
		m.mu.Unlock()
		return nil, fmt.Errorf("fleet: daemon %d self-fenced: no authority contact for %s", m.cfg.ID, since)
	}
	cm := m.cur
	if m.cfg.Authority != nil {
		cm = m.cfg.Authority.Map()
		m.adoptMapLocked(cm)
	}
	owner, placed := cm.Assign[fileSet]
	if !placed {
		m.mu.Unlock()
		return nil, wire.Unplaced(fmt.Errorf("%s %q (epoch %d): assign it to a daemon first (anufsctl assign)",
			unplacedMsg, fileSet, cm.Epoch))
	}
	if owner != m.cfg.ID {
		m.counters.Add(CtrWrongOwner, 1)
		m.mu.Unlock()
		return nil, &wire.WrongOwnerError{Epoch: cm.Epoch}
	}
	if !m.ready[fileSet] && op != wire.OpCreateFileSet {
		m.counters.Add(CtrArrivingRejects, 1)
		m.mu.Unlock()
		return nil, wire.ErrArriving
	}
	// Op-rate quota: one token bucket per volume per daemon (the authority
	// cannot see per-op traffic, so the rate is enforced where the ops
	// land). Checked after ownership so only the serving daemon ever emits
	// quota-exceeded for an op.
	vol := namespace.VolumeOf(fileSet)
	if b := m.buckets[vol]; b != nil && !b.Allow() {
		m.counters.Add(CtrQuotaDenials, 1)
		m.mu.Unlock()
		return nil, wire.QuotaExceeded(fmt.Errorf(
			"fleet: volume %q over its op-rate quota (%g ops/s per daemon)", vol, b.Rate()))
	}
	m.inflight[fileSet]++
	m.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			m.mu.Lock()
			m.inflight[fileSet]--
			if op == wire.OpCreateFileSet && !m.ready[fileSet] {
				// Mark ready only if the create actually materialized the
				// file set (the cluster op may have failed).
				for _, fs := range m.cfg.Disk.FileSets() {
					if fs == fileSet {
						m.ready[fileSet] = true
						break
					}
				}
			}
			m.mu.Unlock()
		})
	}, nil
}

// Fleet implements wire.FleetHandler: dispatch for the fleet ops.
func (m *Member) Fleet(req wire.Request) wire.Response {
	var resp wire.Response
	fail := func(err error) wire.Response {
		resp.Err = err.Error()
		resp.Code = wire.ErrorCode(err)
		return resp
	}
	switch req.Op {
	case wire.OpMap:
		encoded, err := m.CurrentMap().Encode()
		if err != nil {
			return fail(err)
		}
		resp.Map = encoded
		resp.Epoch = m.CurrentMap().Epoch
		// Volume registry rides every map fetch: pollers converge on quotas
		// and weights with the same RPC that converges the map.
		resp.Volumes, resp.VolumesVersion = m.vols.List()
	case wire.OpMapEpoch:
		resp.Epoch = m.CurrentMap().Epoch
	case wire.OpAdopt:
		if err := m.handleAdopt(req); err != nil {
			return fail(err)
		}
		resp.Epoch = m.CurrentMap().Epoch
	case wire.OpHandoff:
		if err := m.handleHandoff(req); err != nil {
			return fail(err)
		}
		resp.Epoch = m.CurrentMap().Epoch
	case wire.OpAssign:
		if m.cfg.Authority == nil {
			return fail(fmt.Errorf("fleet: daemon %d is not the authority", m.cfg.ID))
		}
		epoch, err := m.cfg.Authority.Assign(req.FileSet, req.Daemon)
		if err != nil {
			return fail(err)
		}
		resp.Epoch = epoch
	case wire.OpRebalance:
		if m.cfg.Authority == nil {
			return fail(fmt.Errorf("fleet: daemon %d is not the authority", m.cfg.ID))
		}
		epoch, err := m.cfg.Authority.Rebalance()
		if err != nil {
			return fail(err)
		}
		resp.Epoch = epoch
	case wire.OpJoin:
		if m.cfg.Authority == nil {
			return fail(fmt.Errorf("fleet: daemon %d is not the authority", m.cfg.ID))
		}
		cm, err := m.cfg.Authority.Join(req.Daemon, req.Addr, req.Speed, req.JournalDir)
		if err != nil {
			return fail(err)
		}
		encoded, err := cm.Encode()
		if err != nil {
			return fail(err)
		}
		resp.Map = encoded
		resp.Epoch = cm.Epoch
		resp.Volumes, resp.VolumesVersion = m.vols.List()
	case wire.OpLeave:
		if m.cfg.Authority == nil {
			return fail(fmt.Errorf("fleet: daemon %d is not the authority", m.cfg.ID))
		}
		epoch, err := m.cfg.Authority.Leave(req.Daemon)
		if err != nil {
			return fail(err)
		}
		resp.Epoch = epoch
	case wire.OpHeartbeat:
		if m.cfg.Authority == nil {
			return fail(fmt.Errorf("fleet: daemon %d is not the authority", m.cfg.ID))
		}
		epoch, err := m.cfg.Authority.Heartbeat(req.Daemon, req.Addr, req.Speed, req.JournalDir)
		if err != nil {
			return fail(err)
		}
		resp.Epoch = epoch
	case wire.OpTakeover:
		if err := m.handleTakeover(req); err != nil {
			return fail(err)
		}
		resp.Epoch = m.CurrentMap().Epoch
	case wire.OpVolumeCreate:
		if m.cfg.Authority == nil {
			return fail(fmt.Errorf("fleet: daemon %d is not the authority", m.cfg.ID))
		}
		epoch, err := m.cfg.Authority.VolumeCreate(req.Volume)
		if err != nil {
			return fail(err)
		}
		m.applyVolumes()
		resp.Epoch = epoch
	case wire.OpVolumeDelete:
		if m.cfg.Authority == nil {
			return fail(fmt.Errorf("fleet: daemon %d is not the authority", m.cfg.ID))
		}
		epoch, err := m.cfg.Authority.VolumeDelete(req.Volume)
		if err != nil {
			return fail(err)
		}
		m.applyVolumes()
		resp.Epoch = epoch
	case wire.OpVolumeList:
		if m.cfg.Authority == nil {
			return fail(fmt.Errorf("fleet: daemon %d is not the authority", m.cfg.ID))
		}
		resp.Volumes, resp.VolumesVersion = m.cfg.Authority.Volumes()
		resp.Epoch = m.CurrentMap().Epoch
	case wire.OpVolumeSetQuota:
		if m.cfg.Authority == nil {
			return fail(fmt.Errorf("fleet: daemon %d is not the authority", m.cfg.ID))
		}
		q := volume.Quota{MaxFileSets: req.MaxFileSets, OpRate: req.OpRate}
		epoch, err := m.cfg.Authority.VolumeSetQuota(req.Volume, q, req.Weight)
		if err != nil {
			return fail(err)
		}
		m.applyVolumes()
		resp.Epoch = epoch
	case wire.OpVolumeSetPolicy:
		if m.cfg.Authority == nil {
			return fail(fmt.Errorf("fleet: daemon %d is not the authority", m.cfg.ID))
		}
		epoch, err := m.cfg.Authority.VolumeSetPolicy(req.Volume, req.Policy)
		if err != nil {
			return fail(err)
		}
		m.applyVolumes()
		resp.Epoch = epoch
	default:
		return fail(fmt.Errorf("fleet: unknown fleet op %q", req.Op))
	}
	return resp
}

// handleAdopt serves OpAdopt: a map-only push (no FileSet) or a donated
// file set arriving with its image and the map of the handoff's epoch.
func (m *Member) handleAdopt(req wire.Request) error {
	// A pushed volume registry installs independently of the map's fate:
	// its own version check makes stale snapshots no-ops.
	m.installVolumes(req.Volumes, req.VolumesVersion)
	var cm *placement.ClusterMap
	if len(req.Map) > 0 {
		var err error
		cm, err = placement.DecodeClusterMap(req.Map)
		if err != nil {
			return err
		}
	}
	if req.FileSet == "" {
		// Map-only push from the authority.
		if cm == nil {
			return fmt.Errorf("fleet: adopt without file set or map")
		}
		m.adoptMap(cm)
		return nil
	}
	if cm == nil {
		return fmt.Errorf("fleet: adopt of %q carries no cluster map", req.FileSet)
	}
	if id, ok := cm.Assign[req.FileSet]; !ok || id != m.cfg.ID {
		return fmt.Errorf("fleet: adopt map (epoch %d) does not assign %q to daemon %d",
			cm.Epoch, req.FileSet, m.cfg.ID)
	}
	m.mu.Lock()
	if req.Epoch < m.cur.Epoch {
		cur := m.cur.Epoch
		m.mu.Unlock()
		return fmt.Errorf("fleet: stale adopt of %q at epoch %d (daemon %d at epoch %d)",
			req.FileSet, req.Epoch, m.cfg.ID, cur)
	}
	if m.ready[req.FileSet] && m.cur.Epoch >= req.Epoch {
		// Idempotent retry of a handoff that already completed.
		m.mu.Unlock()
		return nil
	}
	m.mu.Unlock()

	images, err := journal.DecodeImages(req.Snap)
	if err != nil {
		return fmt.Errorf("fleet: adopt of %q: decode image: %w", req.FileSet, err)
	}
	im, ok := images[req.FileSet]
	if !ok {
		return fmt.Errorf("fleet: adopt of %q: image missing from snapshot", req.FileSet)
	}
	installer, ok := m.cfg.Disk.(sharedisk.Installer)
	if !ok {
		return fmt.Errorf("fleet: disk %T cannot install images", m.cfg.Disk)
	}
	if err := installer.Install(req.FileSet, im); err != nil {
		return fmt.Errorf("fleet: adopt of %q: %w", req.FileSet, err)
	}
	if err := m.cfg.Cluster.AdoptFileSet(req.FileSet); err != nil {
		return fmt.Errorf("fleet: adopt of %q: %w", req.FileSet, err)
	}
	// Serve first, then converge the map: until the map flips, the gate
	// still answers wrong-owner (the donor's fence epoch), which routers
	// already handle. Flipping last means no window where the map says
	// "mine" but the file set is not yet served.
	m.mu.Lock()
	m.ready[req.FileSet] = true
	m.adoptMapLocked(cm)
	m.mu.Unlock()
	m.counters.Add(CtrAdopts, 1)
	return nil
}

// handleTakeover serves OpTakeover: adopt file sets from a daemon the
// authority declared dead. The lost-write window closes here — before
// serving, we replay the victim's journal directory on the shared disk
// (read-only: journal.Recover never mutates, so a victim that is merely
// partitioned does not get its journal clobbered) and install the durable
// images it describes. A file set absent from the replay (victim ran
// volatile, or never flushed it) is adopted empty and counted.
func (m *Member) handleTakeover(req wire.Request) error {
	if len(req.FileSets) == 0 {
		return fmt.Errorf("fleet: takeover without file sets")
	}
	cm, err := placement.DecodeClusterMap(req.Map)
	if err != nil {
		return err
	}
	if cm.Epoch != req.Epoch {
		return fmt.Errorf("fleet: takeover epoch %d does not match its map (epoch %d)", req.Epoch, cm.Epoch)
	}
	for _, fs := range req.FileSets {
		if id, ok := cm.Assign[fs]; !ok || id != m.cfg.ID {
			return fmt.Errorf("fleet: takeover map (epoch %d) does not assign %q to daemon %d",
				cm.Epoch, fs, m.cfg.ID)
		}
	}
	m.mu.Lock()
	if req.Epoch < m.cur.Epoch {
		cur := m.cur.Epoch
		m.mu.Unlock()
		return fmt.Errorf("fleet: stale takeover at epoch %d (daemon %d at epoch %d)",
			req.Epoch, m.cfg.ID, cur)
	}
	m.mu.Unlock()

	images := map[string]sharedisk.Image{}
	if req.JournalDir != "" {
		st, _, err := journal.Recover(req.JournalDir)
		if err != nil {
			// Refusing is the safe failure: adopting without the replay
			// would re-open the lost-write window the takeover exists to
			// close. The authority falls back to another candidate or
			// leaves the file sets unplaced for the operator.
			return fmt.Errorf("fleet: takeover replay of %s: %w", req.JournalDir, err)
		}
		images = st.Images()
	}
	installer, ok := m.cfg.Disk.(sharedisk.Installer)
	if !ok {
		return fmt.Errorf("fleet: disk %T cannot install images", m.cfg.Disk)
	}
	for _, fs := range req.FileSets {
		im, found := images[fs]
		if !found {
			m.counters.Add(CtrTakeoverEmpty, 1)
		}
		if err := installer.Install(fs, im); err != nil {
			return fmt.Errorf("fleet: takeover install of %q: %w", fs, err)
		}
		if err := m.cfg.Cluster.AdoptFileSet(fs); err != nil {
			return fmt.Errorf("fleet: takeover adopt of %q: %w", fs, err)
		}
	}
	m.mu.Lock()
	for _, fs := range req.FileSets {
		m.ready[fs] = true
	}
	m.adoptMapLocked(cm)
	m.mu.Unlock()
	m.counters.Add(CtrTakeovers, int64(len(req.FileSets)))
	return nil
}

// handleHandoff serves OpHandoff on the donor: fence, drain, flush,
// transfer, and (on success) drop the local copy. On any failure before
// the recipient has adopted, the donor rolls itself back and keeps
// serving, and the authority discards the candidate map.
func (m *Member) handleHandoff(req wire.Request) error {
	start := time.Now()
	err := m.donate(req)
	if err != nil {
		m.counters.Add(CtrHandoffFailures, 1)
		return err
	}
	m.counters.Add(CtrHandoffs, 1)
	if m.handoffH != nil {
		m.handoffH.Observe(time.Since(start))
	}
	return nil
}

func (m *Member) donate(req wire.Request) error {
	fs := req.FileSet
	cm, err := placement.DecodeClusterMap(req.Map)
	if err != nil {
		return err
	}
	if cm.Epoch != req.Epoch {
		return fmt.Errorf("fleet: handoff epoch %d does not match its map (epoch %d)", req.Epoch, cm.Epoch)
	}
	if id, ok := cm.Assign[fs]; !ok || id == m.cfg.ID {
		return fmt.Errorf("fleet: handoff map still assigns %q to donor %d", fs, m.cfg.ID)
	}

	// Fence: adopt the handoff map now. From this instant the gate rejects
	// new operations on fs with wrong-owner(new epoch); operations admitted
	// earlier are drained below, so every acknowledged write is in the
	// flush the recipient adopts.
	m.mu.Lock()
	if req.Epoch <= m.cur.Epoch {
		cur := m.cur.Epoch
		m.mu.Unlock()
		return fmt.Errorf("fleet: stale handoff of %q at epoch %d (daemon %d at epoch %d)",
			fs, req.Epoch, m.cfg.ID, cur)
	}
	if !m.ready[fs] {
		m.mu.Unlock()
		return fmt.Errorf("fleet: daemon %d does not serve %q", m.cfg.ID, fs)
	}
	prev := m.cur
	m.adoptMapLocked(cm)
	delete(m.ready, fs)
	m.mu.Unlock()

	rollback := func(reAdopt bool) {
		m.mu.Lock()
		// Restore the pre-handoff map unless something even newer arrived
		// while we were failing.
		if m.cur.Epoch == cm.Epoch {
			m.cur = prev
		}
		m.ready[fs] = true
		m.mu.Unlock()
		if reAdopt {
			_ = m.cfg.Cluster.AdoptFileSet(fs)
		}
	}

	if err := m.drain(fs); err != nil {
		rollback(false)
		return err
	}
	// Flush the consistent cut (release serializes behind every admitted
	// operation through the owner queue) and stop serving.
	if err := m.cfg.Cluster.ReleaseFileSet(fs); err != nil {
		rollback(false)
		return fmt.Errorf("fleet: release %q: %w", fs, err)
	}
	im, err := m.cfg.Disk.Load(fs)
	if err != nil {
		rollback(true)
		return fmt.Errorf("fleet: load %q for transfer: %w", fs, err)
	}
	snap := journal.EncodeImages(map[string]sharedisk.Image{fs: im})

	c, err := m.cfg.Dial(req.Addr)
	if err != nil {
		rollback(true)
		// Coded so the authority's rebalance circuit breaker can attribute
		// the failure to the recipient without parsing the message.
		return &wire.CodedError{Code: wire.CodeDialRecipient,
			Err: fmt.Errorf("fleet: dial recipient %s: %w", req.Addr, err)}
	}
	defer c.Close()
	if err := c.Adopt(req.Epoch, fs, snap, req.Map); err != nil {
		// NOTE: if this error is a timeout the recipient may in fact have
		// adopted — the authority keeps the old map, the recipient holds an
		// orphaned copy it does not serve (its map never flips), and the
		// next successful handoff re-installs over it. Documented in
		// DESIGN.md §12.
		rollback(true)
		return fmt.Errorf("fleet: recipient adopt of %q: %w", fs, err)
	}

	// The recipient serves fs now; drop our copy (journaled, so a restart
	// cannot resurrect it). Failure is counted, not fatal: the map fence
	// already keeps this daemon from ever serving fs again.
	if dropper, ok := m.cfg.Disk.(sharedisk.Dropper); ok {
		if err := dropper.DropFileSet(fs); err != nil {
			m.counters.Add(CtrDropFailures, 1)
		}
	} else {
		m.counters.Add(CtrDropFailures, 1)
	}
	return nil
}

// drain waits for gate-admitted operations on fs to finish. Admissions
// stopped when the fence flipped the map, so the count only decreases.
func (m *Member) drain(fs string) error {
	deadline := time.Now().Add(m.cfg.DrainTimeout)
	for {
		m.mu.Lock()
		n := m.inflight[fs]
		m.mu.Unlock()
		if n == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet: drain of %q timed out with %d operations in flight", fs, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Counters exposes the member's counters (tests and stats).
func (m *Member) Counters() *metrics.CounterSet { return m.counters }

// String identifies the member in logs.
func (m *Member) String() string { return "fleet-member-" + strconv.Itoa(m.cfg.ID) }
