package fleet

import (
	"fmt"

	"anufs/internal/namespace"
	"anufs/internal/placement"
	"anufs/internal/volume"
	"anufs/internal/wire"
)

// Volume plumbing. The authority owns the mutable volume registry
// (tenants, quotas, weights, placement policy); every mutation bumps the
// cluster-map epoch so the registry snapshot rides the same push/poll
// convergence machinery as the map itself — OpAdopt publishes and OpMap
// replies carry the snapshot, members install newer versions and apply
// them to their serving plane (owner-queue weights, op-rate buckets).
// Enforcement splits by what each side can see: the authority holds the
// global assignment, so MaxFileSets and placement policy apply at Assign;
// a member only sees its own traffic, so OpRate is a per-daemon token
// bucket at the gate.

// Volumes snapshots the authority's registry.
func (a *Authority) Volumes() ([]volume.Info, uint64) { return a.vols.List() }

// VolumeCreate registers a new tenant volume and returns the epoch of the
// map that announces it.
func (a *Authority) VolumeCreate(name string) (uint64, error) {
	if _, err := a.vols.Create(name); err != nil {
		return a.Epoch(), err
	}
	return a.volumesChanged(), nil
}

// VolumeDelete removes an empty volume; a volume still owning file sets
// is refused.
func (a *Authority) VolumeDelete(name string) (uint64, error) {
	cur := a.Map()
	_, err := a.vols.Delete(name, func(vol string) int {
		n := 0
		for fs := range cur.Assign {
			if namespace.VolumeOf(fs) == vol {
				n++
			}
		}
		return n
	})
	if err != nil {
		return cur.Epoch, err
	}
	return a.volumesChanged(), nil
}

// VolumeSetQuota updates a volume's quotas and scheduling weight
// (weight <= 0 keeps the current weight).
func (a *Authority) VolumeSetQuota(name string, q volume.Quota, weight float64) (uint64, error) {
	if _, err := a.vols.SetQuota(name, q, weight); err != nil {
		return a.Epoch(), err
	}
	return a.volumesChanged(), nil
}

// VolumeSetPolicy updates a volume's placement policy (spread | pack).
func (a *Authority) VolumeSetPolicy(name, policy string) (uint64, error) {
	if _, err := a.vols.SetPolicy(name, policy); err != nil {
		return a.Epoch(), err
	}
	return a.volumesChanged(), nil
}

// volumesChanged persists the registry snapshot (the standby's copy rides
// the same journal/ship path as the map) and bumps the map epoch with an
// unchanged assignment, so the publish push and member polls deliver the
// new registry fleet-wide. Persist failures degrade replication, never
// serving.
func (a *Authority) volumesChanged() uint64 {
	vols, version := a.vols.List()
	if a.cfg.PersistVolumes != nil {
		if err := a.cfg.PersistVolumes(vols, version); err != nil {
			a.counters.Add(CtrVolumePersistFailures, 1)
		}
	}
	a.mu.Lock()
	cm := a.composeLocked(a.nextEpochLocked(), a.Map().Assign)
	a.commitLocked(cm)
	a.mu.Unlock()
	a.publish(cm)
	return cm.Epoch
}

// admitFileSetLocked enforces volume admission for a file set about to
// enter the map: the volume must exist (system pseudo file sets bypass)
// and have headroom under its MaxFileSets quota. Caller holds mu.
func (a *Authority) admitFileSetLocked(cur *placement.ClusterMap, fileSet string) error {
	vol := namespace.VolumeOf(fileSet)
	if namespace.SystemVolume(vol) {
		return nil
	}
	info, ok := a.vols.Get(vol)
	if !ok {
		return fmt.Errorf("fleet: unknown volume %q: create it first (anufsctl volume create)", vol)
	}
	if max := info.Quota.MaxFileSets; max > 0 {
		n := 0
		for fs := range cur.Assign {
			if namespace.VolumeOf(fs) == vol {
				n++
			}
		}
		if n >= max {
			a.counters.Add(CtrQuotaDenials, 1)
			return wire.QuotaExceeded(fmt.Errorf(
				"fleet: volume %q at its file-set quota (%d of %d)", vol, n, max))
		}
	}
	return nil
}

// placeLocked picks the owner for a file set the caller did not pin. A
// new file set in a pack-policy volume co-locates with the bulk of that
// volume's existing file sets; everything else (spread policy, moves of
// already-owned file sets, volumes with nothing placed yet) follows the
// speed-weighted ANU mapper. Caller holds mu.
func (a *Authority) placeLocked(cur *placement.ClusterMap, fileSet string, owned bool) int {
	if !owned {
		vol := namespace.VolumeOf(fileSet)
		if info, ok := a.vols.Get(vol); ok && info.Policy == volume.PolicyPack {
			if id, ok := a.packOwnerLocked(cur, vol); ok {
				return id
			}
		}
	}
	return a.mapper.Owner(fileSet)
}

// packOwnerLocked finds the live daemon owning the most of vol's file
// sets (lowest ID on ties); ok=false when the volume owns none yet — the
// first file set seeds wherever the mapper puts it.
func (a *Authority) packOwnerLocked(cur *placement.ClusterMap, vol string) (int, bool) {
	counts := map[int]int{}
	for fs, id := range cur.Assign {
		if namespace.VolumeOf(fs) != vol {
			continue
		}
		if _, live := a.daemons[id]; live {
			counts[id]++
		}
	}
	best, bestN := -1, 0
	for id, n := range counts {
		if n > bestN || (n == bestN && id < best) {
			best, bestN = id, n
		}
	}
	return best, best != -1
}

// Volumes snapshots the member's registry view (the authority's own on
// the authority daemon).
func (m *Member) Volumes() ([]volume.Info, uint64) { return m.vols.List() }

// installVolumes adopts a pushed registry snapshot when it is newer than
// the member's view, then re-applies it to the serving plane.
func (m *Member) installVolumes(vols []volume.Info, version uint64) {
	if version == 0 || len(vols) == 0 {
		return
	}
	if m.vols.Install(vols, version) {
		m.counters.Add(CtrVolumeRefreshes, 1)
		m.applyVolumes()
	}
}

// applyVolumes pushes the current registry into the serving plane: owner
// queue weights on the live cluster, per-volume op-rate token buckets on
// the gate. Buckets keep their accrued tokens across updates that do not
// change their rate, so a quota edit elsewhere never refills a throttled
// tenant.
func (m *Member) applyVolumes() {
	vols, _ := m.vols.List()
	weights := make(map[string]float64, len(vols))
	known := make(map[string]bool, len(vols))
	m.mu.Lock()
	for _, v := range vols {
		weights[v.Name] = v.Weight
		known[v.Name] = true
		if old, ok := m.buckets[v.Name]; ok && (old == nil && v.Quota.OpRate <= 0 ||
			old != nil && old.Rate() == v.Quota.OpRate) {
			continue
		}
		m.buckets[v.Name] = volume.NewBucket(v.Quota.OpRate) // nil = unlimited
	}
	for name := range m.buckets {
		if !known[name] {
			delete(m.buckets, name)
		}
	}
	m.mu.Unlock()
	m.cfg.Cluster.SetVolumeWeights(weights)
}
