package fleet

import (
	"errors"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anufs/internal/journal"
	"anufs/internal/live"
	"anufs/internal/placement"
	"anufs/internal/sharedisk"
	"anufs/internal/wire"
)

// addDaemon spins up one more in-process daemon (join mode) against an
// existing fleet and registers it with the authority over the wire.
func addDaemon(t *testing.T, f *testFleet, id int, speed float64) *testDaemon {
	t.Helper()
	d := &testDaemon{id: id, disk: sharedisk.NewStore(0)}
	cfg := live.DefaultConfig()
	cfg.Window = time.Hour
	cfg.OpCost = 0
	cfg.RetryBudget = 200 * time.Millisecond
	clus, err := live.NewCluster(cfg, d.disk, map[int]float64{0: 1})
	if err != nil {
		t.Fatal(err)
	}
	d.clus = clus
	d.srv = wire.NewServer(clus)
	addr, err := d.srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d.addr = addr
	cm, err := f.auth.Join(id, addr, speed, "")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMember(MemberConfig{
		ID:            id,
		Cluster:       clus,
		Disk:          d.disk,
		AuthorityAddr: f.daemons[0].addr,
		Addr:          addr,
		Speed:         speed,
		DrainTimeout:  2 * time.Second,
		PollInterval:  20 * time.Millisecond,
		Dial:          testDial,
	}, cm)
	if err != nil {
		t.Fatal(err)
	}
	d.member = m
	d.srv.SetFleet(m)
	m.Start()
	f.daemons = append(f.daemons, d)
	t.Cleanup(func() {
		m.Stop()
		d.srv.Close()
		d.clus.Stop()
	})
	return d
}

// TestJoinAddsDaemonLive: a daemon joins a running fleet over the wire — no
// restart — and the next rebalance moves load onto it with data intact.
func TestJoinAddsDaemonLive(t *testing.T) {
	f := startFleet(t, []float64{1, 1}, nil)
	r := f.router(t)
	names := []string{"vol00", "vol01", "vol02", "vol03", "vol04", "vol05"}
	for _, fs := range names {
		if err := r.CreateFileSet(fs); err != nil {
			t.Fatal(err)
		}
		if err := r.Create(fs, "/seed", sharedisk.Record{Size: 3}); err != nil {
			t.Fatal(err)
		}
	}
	before := f.auth.Epoch()

	// The newcomer is much faster than the incumbents, so rebalance must
	// route file sets to it.
	addDaemon(t, f, 2, 8)

	cm := f.auth.Map()
	if cm.Epoch <= before {
		t.Fatalf("join did not bump the epoch: %d -> %d", before, cm.Epoch)
	}
	if _, ok := cm.Daemon(2); !ok {
		t.Fatal("joined daemon absent from the map")
	}
	if got := len(cm.FileSetsOf(2)); got != 0 {
		t.Fatalf("join moved %d file sets without a handoff", got)
	}
	if n := f.auth.Counters().Snapshot()[CtrJoins]; n != 1 {
		t.Fatalf("join counter = %d, want 1", n)
	}

	if _, err := f.auth.Rebalance(); err != nil {
		t.Fatal(err)
	}
	cm = f.auth.Map()
	if got := len(cm.FileSetsOf(2)); got < len(names)/2 {
		t.Fatalf("fast newcomer owns %d of %d file sets after rebalance", got, len(names))
	}
	for _, fs := range names {
		if rec, err := r.Stat(fs, "/seed"); err != nil || rec.Size != 3 {
			t.Fatalf("Stat %s after join+rebalance = %+v, %v", fs, rec, err)
		}
	}

	// Idempotent re-join: same identity, no epoch bump.
	cur := f.auth.Epoch()
	if _, err := f.auth.Join(2, f.daemons[2].addr, 8, ""); err != nil {
		t.Fatal(err)
	}
	if got := f.auth.Epoch(); got != cur {
		t.Fatalf("idempotent re-join bumped the epoch %d -> %d", cur, got)
	}
}

// TestJoinRejectsBadSpeed is the satellite regression test for the
// rescaleBySpeed division hazard: non-positive and NaN speeds must be
// rejected at the door (constructor and join), never fed to the mapper.
func TestJoinRejectsBadSpeed(t *testing.T) {
	for _, bad := range []float64{0, -1, math.NaN()} {
		_, err := NewAuthority(AuthorityConfig{
			Daemons: []placement.DaemonInfo{{ID: 0, Addr: "a:1", Speed: bad}},
		})
		if err == nil || !strings.Contains(err.Error(), "speed") {
			t.Fatalf("NewAuthority with speed %v = %v, want speed error", bad, err)
		}
	}
	auth, err := NewAuthority(AuthorityConfig{
		Daemons: []placement.DaemonInfo{{ID: 0, Addr: "a:1", Speed: 1}},
		Dial:    func(string) (*wire.Client, error) { return nil, errors.New("no network") },
	})
	if err != nil {
		t.Fatal(err)
	}
	before := auth.Epoch()
	for _, bad := range []float64{0, -1, math.NaN()} {
		if _, err := auth.Join(7, "b:1", bad, ""); err == nil {
			t.Fatalf("Join with speed %v accepted", bad)
		}
	}
	if got := auth.Epoch(); got != before {
		t.Fatalf("rejected joins moved the epoch %d -> %d", before, got)
	}
	if _, ok := auth.Map().Daemon(7); ok {
		t.Fatal("rejected daemon leaked into the map")
	}
}

// TestLeaveDrainsDaemon: a graceful leave hands every owned file set off to
// the survivors before the daemon disappears from the map.
func TestLeaveDrainsDaemon(t *testing.T) {
	f := startFleet(t, []float64{1, 1}, nil)
	r := f.router(t)
	names := []string{"vol00", "vol01", "vol02", "vol03"}
	for _, fs := range names {
		if err := r.CreateFileSet(fs); err != nil {
			t.Fatal(err)
		}
		if err := r.Create(fs, "/seed", sharedisk.Record{Size: 5}); err != nil {
			t.Fatal(err)
		}
	}
	// Make sure the leaver actually owns something.
	if _, err := f.auth.Assign("vol00", 1); err != nil {
		t.Fatal(err)
	}

	if _, err := f.auth.Leave(0); err == nil {
		t.Fatal("authority daemon allowed to leave")
	}
	if _, err := f.auth.Leave(42); err == nil || !strings.Contains(err.Error(), "unknown daemon") {
		t.Fatalf("leave of unknown daemon = %v", err)
	}

	epoch, err := f.auth.Leave(1)
	if err != nil {
		t.Fatal(err)
	}
	cm := f.auth.Map()
	if cm.Epoch != epoch {
		t.Fatalf("Leave returned epoch %d, map at %d", epoch, cm.Epoch)
	}
	if _, ok := cm.Daemon(1); ok {
		t.Fatal("left daemon still in the map")
	}
	for _, fs := range names {
		if owner, ok := cm.Owner(fs); !ok || owner.ID != 0 {
			t.Fatalf("%s owner after leave = %+v, %v; want daemon 0", fs, owner, ok)
		}
		if rec, err := r.Stat(fs, "/seed"); err != nil || rec.Size != 5 {
			t.Fatalf("Stat %s after leave = %+v, %v", fs, rec, err)
		}
	}
	if n := f.auth.Counters().Snapshot()[CtrLeaves]; n != 1 {
		t.Fatalf("leave counter = %d, want 1", n)
	}
}

// TestHeartbeatUnknownDaemonTellsJoin: the authority answers heartbeats
// from daemons it does not know with the re-join signal — carried as a
// machine-readable code, not message text the member would have to parse.
func TestHeartbeatUnknownDaemonTellsJoin(t *testing.T) {
	f := startFleet(t, []float64{1, 1}, nil)
	if _, err := f.auth.Heartbeat(9, "x:1", 1, ""); err == nil ||
		wire.ErrorCode(err) != wire.CodeJoinFirst {
		t.Fatalf("heartbeat from unknown daemon = %v (code %q), want code %q",
			err, wire.ErrorCode(err), wire.CodeJoinFirst)
	}
	if _, err := f.auth.Heartbeat(1, f.daemons[1].addr, 1, "/tmp/j1"); err != nil {
		t.Fatal(err)
	}
	if got := f.auth.JournalDir(1); got != "/tmp/j1" {
		t.Fatalf("heartbeat did not record the journal dir: %q", got)
	}
}

// TestPublishBoundedWithUnreachableDaemon is the satellite regression test
// for the publish stall: one wedged daemon (its dial hangs rather than
// failing fast) must not stall map commits beyond the publish wait cap.
func TestPublishBoundedWithUnreachableDaemon(t *testing.T) {
	hang := 400 * time.Millisecond
	dial := func(string) (*wire.Client, error) {
		time.Sleep(hang)
		return nil, errors.New("unreachable")
	}
	auth, err := NewAuthority(AuthorityConfig{
		Daemons: []placement.DaemonInfo{
			{ID: 0, Addr: "dead-a:1", Speed: 1},
			{ID: 1, Addr: "dead-b:1", Speed: 1},
		},
		Dial:        dial,
		PublishWait: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := auth.Assign("vol00", 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > hang {
		t.Fatalf("Assign blocked %s on unreachable daemons; publish wait cap is 50ms", elapsed)
	}
	// The abandoned publish goroutines finish on their own and are counted.
	time.Sleep(hang + 200*time.Millisecond)
	if n := auth.Counters().Snapshot()[CtrPublishStragglers]; n != 2 {
		t.Fatalf("publish straggler counter = %d, want 2", n)
	}
}

// TestRebalanceCircuitBreaker is the satellite test for the dead-daemon
// rebalance path: the first failed dial of a daemon circuit-breaks every
// remaining move touching it — one timeout total, not one per file set —
// and the skipped file sets are named in the error.
func TestRebalanceCircuitBreaker(t *testing.T) {
	var dials atomic.Int64
	dial := func(string) (*wire.Client, error) {
		dials.Add(1)
		return nil, errors.New("connection refused")
	}
	// Resume a map with every file set on the slow daemon 0; the mapper
	// wants nearly all of them on the 100x faster daemon 1, so a working
	// rebalance would run many moves — all with daemon 0 as donor.
	resume := &placement.ClusterMap{
		Epoch: 5,
		Daemons: []placement.DaemonInfo{
			{ID: 0, Addr: "dead:1", Speed: 1},
			{ID: 1, Addr: "alive:1", Speed: 100},
		},
		Assign: map[string]int{
			"vol00": 0, "vol01": 0, "vol02": 0, "vol03": 0, "vol04": 0, "vol05": 0,
		},
	}
	auth, err := NewAuthority(AuthorityConfig{Resume: resume, Dial: dial})
	if err != nil {
		t.Fatal(err)
	}
	before := auth.Epoch()
	dials.Store(0)
	epoch, err := auth.Rebalance()
	if err == nil || !strings.Contains(err.Error(), "rebalance skipped moves") {
		t.Fatalf("rebalance with a dead donor = %v, want skipped-moves error", err)
	}
	if epoch != before {
		t.Fatalf("failed rebalance moved the epoch %d -> %d", before, epoch)
	}
	// One donor dial attempt plus the final best-effort publish to both
	// daemons — NOT one dial per move.
	if n := dials.Load(); n > 3 {
		t.Fatalf("rebalance dialed %d times for a circuit-broken daemon, want <= 3", n)
	}
	// Every move after the first failure is named as skipped.
	skipped := 0
	for _, fs := range []string{"vol00", "vol01", "vol02", "vol03", "vol04", "vol05"} {
		if strings.Contains(err.Error(), fs) {
			skipped++
		}
	}
	if skipped < 4 {
		t.Fatalf("error names %d skipped file sets (%v), want most of the 6", skipped, err)
	}
}

// TestAssignDeadRecipientBounded: assigning a file set to an unreachable
// daemon fails in bounded time with the epoch and ownership intact (the
// dead-recipient half of the authority-vs-dead-daemon satellite).
func TestAssignDeadRecipientBounded(t *testing.T) {
	f := startFleet(t, []float64{1, 1}, nil)
	r := f.router(t)
	if err := r.CreateFileSet("vol00"); err != nil {
		t.Fatal(err)
	}
	if err := r.Create("vol00", "/a", sharedisk.Record{Size: 11}); err != nil {
		t.Fatal(err)
	}
	from := f.auth.Map().Assign["vol00"]
	to := 1 - from
	f.daemons[to].srv.Close()
	before := f.auth.Epoch()

	start := time.Now()
	_, err := f.auth.Assign("vol00", to)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("assign to a dead recipient succeeded")
	}
	// The donor's dial-recipient failure crossed the wire as a coded error
	// (the circuit-breaker signal), not as message text to be parsed.
	if wire.ErrorCode(err) != wire.CodeDialRecipient {
		t.Fatalf("assign to a dead recipient = %v (code %q), want code %q",
			err, wire.ErrorCode(err), wire.CodeDialRecipient)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("assign to a dead recipient took %s, want bounded well under the handoff timeout", elapsed)
	}
	if got := f.auth.Epoch(); got != before {
		t.Fatalf("failed assign moved the epoch %d -> %d", before, got)
	}
	if rec, err := r.Stat("vol00", "/a"); err != nil || rec.Size != 11 {
		t.Fatalf("donor lost the file set after the failed assign: %+v, %v", rec, err)
	}
}

// elasticDaemon is a testDaemon variant whose disk journals to real files,
// so a takeover can replay its tail after a "kill".
type elasticDaemon struct {
	id     int
	addr   string
	dir    string
	jnl    *journal.Journal
	disk   sharedisk.Disk
	clus   *live.Cluster
	srv    *wire.Server
	member *Member
}

func startElasticDaemon(t *testing.T, id int, journaled bool) *elasticDaemon {
	t.Helper()
	d := &elasticDaemon{id: id}
	if journaled {
		d.dir = t.TempDir()
		jnl, st, _, err := journal.Open(d.dir, journal.Options{FsyncInterval: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		d.jnl = jnl
		d.disk = sharedisk.NewDurable(st, jnl, 1<<20)
	} else {
		d.disk = sharedisk.NewStore(0)
	}
	cfg := live.DefaultConfig()
	cfg.Window = time.Hour
	cfg.OpCost = 0
	cfg.RetryBudget = 200 * time.Millisecond
	clus, err := live.NewCluster(cfg, d.disk, map[int]float64{0: 1})
	if err != nil {
		t.Fatal(err)
	}
	d.clus = clus
	d.srv = wire.NewServer(clus)
	addr, err := d.srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d.addr = addr
	return d
}

// TestFailoverReplaysJournal is the tentpole's in-process end: the
// authority's heartbeat detector declares a silent daemon dead, and the
// surviving daemon adopts its file sets only after replaying the victim's
// journal from shared disk — so writes the victim acknowledged and flushed
// survive its death.
func TestFailoverReplaysJournal(t *testing.T) {
	lease := 150 * time.Millisecond

	d0 := startElasticDaemon(t, 0, false)
	d1 := startElasticDaemon(t, 1, true)

	auth, err := NewAuthority(AuthorityConfig{
		Daemons: []placement.DaemonInfo{
			{ID: 0, Addr: d0.addr, Speed: 1},
			{ID: 1, Addr: d1.addr, Speed: 1},
		},
		FileSets:     []string{"vol00", "vol01"},
		SelfID:       0,
		Dial:         testDial,
		Lease:        lease,
		StartupGrace: 2 * lease,
	})
	if err != nil {
		t.Fatal(err)
	}

	m0, err := NewMember(MemberConfig{
		ID: 0, Cluster: d0.clus, Disk: d0.disk, Authority: auth,
		DrainTimeout: 2 * time.Second, PollInterval: 20 * time.Millisecond,
		Dial: testDial,
	}, auth.Map())
	if err != nil {
		t.Fatal(err)
	}
	d0.member = m0
	d0.srv.SetFleet(m0)

	m1, err := NewMember(MemberConfig{
		ID: 1, Cluster: d1.clus, Disk: d1.disk,
		AuthorityAddr: d0.addr, Addr: d1.addr, JournalDir: d1.dir,
		DrainTimeout: 2 * time.Second, PollInterval: 20 * time.Millisecond,
		Dial: testDial,
	}, auth.Map())
	if err != nil {
		t.Fatal(err)
	}
	d1.member = m1
	d1.srv.SetFleet(m1)

	m0.Start()
	m1.Start()
	t.Cleanup(func() {
		m0.Stop()
		d0.srv.Close()
		d0.clus.Stop()
	})

	r, err := NewRouter(RouterConfig{
		AuthorityAddr: d0.addr,
		Budget:        5 * time.Second,
		Dial:          testDial,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)

	// Put both file sets on the journaled daemon and write through the
	// router, then checkpoint so the writes are journaled on shared disk.
	for _, fs := range []string{"vol00", "vol01"} {
		if err := r.CreateFileSet(fs); err != nil {
			t.Fatal(err)
		}
		if _, err := auth.Assign(fs, 1); err != nil {
			t.Fatal(err)
		}
		if err := r.Create(fs, "/acked", sharedisk.Record{Size: 42}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d1.clus.CheckpointAll(); err != nil {
		t.Fatal(err)
	}

	// The victim was roster-seeded, so the authority learns its journal
	// directory from the heartbeat loop; wait for the first one (a joining
	// daemon would have registered it in the join request).
	hbDeadline := time.Now().Add(3 * time.Second)
	for auth.JournalDir(1) == "" {
		if time.Now().After(hbDeadline) {
			t.Fatal("heartbeat never registered the victim's journal dir")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// kill -9 the victim: no leave, no drain — its heartbeats just stop.
	m1.Stop()
	d1.srv.Close()
	d1.clus.Stop()
	if err := d1.jnl.Close(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		cm := auth.Map()
		_, gone := cm.Daemon(1)
		if !gone && cm.Assign["vol00"] == 0 && cm.Assign["vol01"] == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("failover never completed: map %+v", cm)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The acked, flushed writes survived onto the new owner via replay.
	for _, fs := range []string{"vol00", "vol01"} {
		if rec, err := r.Stat(fs, "/acked"); err != nil || rec.Size != 42 {
			t.Fatalf("Stat %s after failover = %+v, %v", fs, rec, err)
		}
	}
	ac := auth.Counters().Snapshot()
	if ac[CtrFailovers] != 1 {
		t.Fatalf("failover counter = %d, want 1", ac[CtrFailovers])
	}
	if ac[CtrFailoverFileSets] != 2 {
		t.Fatalf("failover file-set counter = %d, want 2", ac[CtrFailoverFileSets])
	}
	mc := m0.Counters().Snapshot()
	if mc[CtrTakeovers] != 2 {
		t.Fatalf("takeover counter = %d, want 2", mc[CtrTakeovers])
	}
	if mc[CtrTakeoverEmpty] != 0 {
		t.Fatalf("takeover-empty counter = %d, want 0 (the journal had both file sets)", mc[CtrTakeoverEmpty])
	}

	// The dead daemon restarts (fresh store, same identity): like anufsd, it
	// joins first and builds its member from the join reply's map.
	d1b := startElasticDaemon(t, 1, false)
	cmJoin, err := auth.Join(1, d1b.addr, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	m1b, err := NewMember(MemberConfig{
		ID: 1, Cluster: d1b.clus, Disk: d1b.disk,
		AuthorityAddr: d0.addr, Addr: d1b.addr,
		DrainTimeout: 2 * time.Second, PollInterval: 20 * time.Millisecond,
		Dial: testDial,
	}, cmJoin)
	if err != nil {
		t.Fatal(err)
	}
	d1b.member = m1b
	d1b.srv.SetFleet(m1b)
	m1b.Start()
	t.Cleanup(func() {
		m1b.Stop()
		d1b.srv.Close()
		d1b.clus.Stop()
	})
	if _, ok := auth.Map().Daemon(1); !ok {
		t.Fatal("restarted daemon absent from the map after re-join")
	}
	// Its old file sets stayed with the takeover owner — a restart must not
	// silently reclaim state it no longer has.
	if got := auth.Map().Assign["vol00"]; got != 0 {
		t.Fatalf("vol00 snapped back to the restarted daemon (owner %d)", got)
	}
}

// TestRejoinAfterFalseDeath: a daemon partitioned long enough to be
// declared dead (and failed over) detects it on its next successful
// heartbeat — "unknown daemon" — and re-registers without restarting.
func TestRejoinAfterFalseDeath(t *testing.T) {
	lease := 150 * time.Millisecond
	var partitioned atomic.Bool
	flakyDial := func(addr string) (*wire.Client, error) {
		if partitioned.Load() {
			return nil, errors.New("partitioned")
		}
		return testDial(addr)
	}

	d0 := startElasticDaemon(t, 0, false)
	d1 := startElasticDaemon(t, 1, false)
	auth, err := NewAuthority(AuthorityConfig{
		Daemons: []placement.DaemonInfo{
			{ID: 0, Addr: d0.addr, Speed: 1},
			{ID: 1, Addr: d1.addr, Speed: 1},
		},
		FileSets:     []string{"vol00"},
		SelfID:       0,
		Dial:         testDial,
		Lease:        lease,
		StartupGrace: 2 * lease,
	})
	if err != nil {
		t.Fatal(err)
	}
	m0, err := NewMember(MemberConfig{
		ID: 0, Cluster: d0.clus, Disk: d0.disk, Authority: auth,
		DrainTimeout: 2 * time.Second, PollInterval: 20 * time.Millisecond,
		Dial: testDial,
	}, auth.Map())
	if err != nil {
		t.Fatal(err)
	}
	d0.srv.SetFleet(m0)
	m1, err := NewMember(MemberConfig{
		ID: 1, Cluster: d1.clus, Disk: d1.disk,
		AuthorityAddr: d0.addr, Addr: d1.addr,
		DrainTimeout: 2 * time.Second, PollInterval: 20 * time.Millisecond,
		Dial: flakyDial,
	}, auth.Map())
	if err != nil {
		t.Fatal(err)
	}
	d1.srv.SetFleet(m1)
	m0.Start()
	m1.Start()
	t.Cleanup(func() {
		m1.Stop()
		m0.Stop()
		d1.srv.Close()
		d0.srv.Close()
		d1.clus.Stop()
		d0.clus.Stop()
	})

	// Partition daemon 1 (heartbeats stop) until the authority reaps it.
	partitioned.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := auth.Map().Daemon(1); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("partitioned daemon never declared dead")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Heal the partition: the next heartbeat gets the join-first code, the
	// member re-joins, and the map includes it again. Wait for the rejoin
	// counter as well — the authority commits the new map inside the Join
	// call, a beat before the member increments its counter.
	partitioned.Store(false)
	deadline = time.Now().Add(5 * time.Second)
	for {
		_, ok := auth.Map().Daemon(1)
		if ok && m1.Counters().Snapshot()[CtrRejoins] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healed daemon never re-joined: in map=%v rejoins=%d",
				ok, m1.Counters().Snapshot()[CtrRejoins])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFenceAfterCutsOffPartitionedDaemon: a join-mode daemon that cannot
// reach any authority for FenceAfter stops admitting operations — it must
// not keep acknowledging writes the fleet will reassign elsewhere.
func TestFenceAfterCutsOffPartitionedDaemon(t *testing.T) {
	f := startFleet(t, []float64{1, 1}, func(i int, cfg *MemberConfig) {
		if i == 1 {
			cfg.Addr = "self:1" // heartbeat mode
			cfg.FenceAfter = 80 * time.Millisecond
			cfg.PollInterval = 10 * time.Millisecond
		}
	})
	r := f.router(t)
	if err := r.CreateFileSet("vol00"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.auth.Assign("vol00", 1); err != nil {
		t.Fatal(err)
	}
	// Healthy: the heartbeat loop keeps lastContact fresh, the gate admits.
	time.Sleep(150 * time.Millisecond)
	if release, err := f.daemons[1].member.Gate(wire.OpStat, "vol00"); err != nil {
		t.Fatalf("gate while healthy = %v", err)
	} else {
		release()
	}
	// Partition: the authority daemon disappears.
	f.daemons[0].srv.Close()
	deadline := time.Now().Add(3 * time.Second)
	for {
		_, err := f.daemons[1].member.Gate(wire.OpStat, "vol00")
		if err != nil && strings.Contains(err.Error(), "self-fenced") {
			break
		}
		if err == nil {
			// still admitting; wait for the fence to trip
		}
		if time.Now().After(deadline) {
			t.Fatalf("partitioned daemon never self-fenced: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// slowTakeoverFleet wraps a member's fleet dispatch, delaying takeovers —
// a stand-in for replaying a large journal before the reply.
type slowTakeoverFleet struct {
	*Member
	delay time.Duration
}

func (s *slowTakeoverFleet) Fleet(req wire.Request) wire.Response {
	if req.Op == wire.OpTakeover {
		time.Sleep(s.delay)
	}
	return s.Member.Fleet(req)
}

// TestTakeoverSurvivesSlowJournalReplay: the takeover call runs a full
// journal replay on the recipient before replying, so it must get a
// handoff-sized deadline — not the publish deadline its dialer starts
// with. A recipient slower than the publish deadline must still complete
// the failover instead of "timing out" into unplaced file sets while it
// adopts the candidate map server-side anyway.
func TestTakeoverSurvivesSlowJournalReplay(t *testing.T) {
	d0 := startElasticDaemon(t, 0, false)
	pubTimeout := 100 * time.Millisecond
	auth, err := NewAuthority(AuthorityConfig{
		Resume: &placement.ClusterMap{
			Epoch: 3,
			Daemons: []placement.DaemonInfo{
				{ID: 0, Addr: d0.addr, Speed: 1},
				{ID: 1, Addr: "127.0.0.1:1", Speed: 1}, // the dead victim
			},
			Assign: map[string]int{"vol00": 1, "vol01": 1},
		},
		SelfID:         0,
		PublishTimeout: pubTimeout, // real dialers: dialFast connects with this
	})
	if err != nil {
		t.Fatal(err)
	}
	m0, err := NewMember(MemberConfig{
		ID: 0, Cluster: d0.clus, Disk: d0.disk, Authority: auth,
		DrainTimeout: 2 * time.Second, PollInterval: 20 * time.Millisecond,
		Dial: testDial,
	}, auth.Map())
	if err != nil {
		t.Fatal(err)
	}
	d0.member = m0
	// The survivor answers takeovers 3x slower than the publish deadline.
	d0.srv.SetFleet(&slowTakeoverFleet{Member: m0, delay: 3 * pubTimeout})
	t.Cleanup(func() {
		d0.srv.Close()
		d0.clus.Stop()
	})

	auth.mu.Lock()
	auth.failoverLocked(1)
	auth.mu.Unlock()

	cm := auth.Map()
	if _, ok := cm.Daemon(1); ok {
		t.Fatal("victim still in the map after failover")
	}
	for _, fs := range []string{"vol00", "vol01"} {
		if got, ok := cm.Assign[fs]; !ok || got != 0 {
			t.Fatalf("%s owner after slow takeover = %d, %v; want daemon 0 (takeover timed out?)", fs, got, ok)
		}
	}
	ac := auth.Counters().Snapshot()
	if ac[CtrFailoverUnplaced] != 0 {
		t.Fatalf("slow takeover left %d file sets unplaced", ac[CtrFailoverUnplaced])
	}
	if ac[CtrFailoverFileSets] != 2 {
		t.Fatalf("failover adopted %d file sets, want 2", ac[CtrFailoverFileSets])
	}
}

// refusingRecorder is a fleet handler that refuses every takeover after
// recording its epoch — the shape of a recipient that adopted the
// candidate map server-side while the authority saw only a failure.
type refusingRecorder struct {
	mu     sync.Mutex
	epochs []uint64
}

func (r *refusingRecorder) Gate(op wire.Op, fileSet string) (func(), error) {
	return func() {}, nil
}

func (r *refusingRecorder) Fleet(req wire.Request) wire.Response {
	if req.Op == wire.OpTakeover {
		r.mu.Lock()
		r.epochs = append(r.epochs, req.Epoch)
		r.mu.Unlock()
	}
	return wire.Response{Err: "refused"}
}

// TestFailoverNeverReusesEpochs: every candidate map the authority sends —
// committed or abandoned — must consume a distinct epoch. Reusing an
// abandoned candidate's epoch for the committed victim-less map would
// strand any recipient that actually installed the candidate (e.g. the
// RPC timed out after the server-side adopt): it would ignore the
// committed equal-epoch map as not-newer and keep serving file sets the
// authority considers unplaced.
func TestFailoverNeverReusesEpochs(t *testing.T) {
	d0 := startElasticDaemon(t, 0, false)
	rec := &refusingRecorder{}
	d0.srv.SetFleet(rec)
	t.Cleanup(func() {
		d0.srv.Close()
		d0.clus.Stop()
	})
	auth, err := NewAuthority(AuthorityConfig{
		Resume: &placement.ClusterMap{
			Epoch: 5,
			Daemons: []placement.DaemonInfo{
				{ID: 0, Addr: d0.addr, Speed: 1},
				{ID: 1, Addr: "127.0.0.1:1", Speed: 1}, // the dead victim
			},
			Assign: map[string]int{"vol00": 1, "vol01": 1},
		},
		SelfID: 0,
	})
	if err != nil {
		t.Fatal(err)
	}

	auth.mu.Lock()
	auth.failoverLocked(1)
	auth.mu.Unlock()

	rec.mu.Lock()
	attempts := append([]uint64(nil), rec.epochs...)
	rec.mu.Unlock()
	if len(attempts) == 0 {
		t.Fatal("no takeover was attempted")
	}
	final := auth.Map().Epoch
	for _, e := range attempts {
		if final <= e {
			t.Fatalf("committed map epoch %d does not supersede abandoned candidate epoch %d", final, e)
		}
	}
	seen := map[uint64]bool{}
	for _, e := range attempts {
		if seen[e] {
			t.Fatalf("candidate epoch %d issued twice: %v", e, attempts)
		}
		seen[e] = true
	}
}

// TestHeartbeatNotBlockedByReconfiguration: heartbeats must stay
// responsive while the authority holds its reconfiguration lock across
// network RPCs (failover, leave, rebalance) — otherwise leases lapse
// because the authority is busy and the detector cascades failovers onto
// healthy members.
func TestHeartbeatNotBlockedByReconfiguration(t *testing.T) {
	auth, err := NewAuthority(AuthorityConfig{
		Daemons: []placement.DaemonInfo{
			{ID: 0, Addr: "a:1", Speed: 1},
			{ID: 1, Addr: "b:1", Speed: 1},
		},
		Dial: func(string) (*wire.Client, error) { return nil, errors.New("no network") },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a long failover: the reconfiguration lock is held while the
	// heartbeat arrives.
	auth.mu.Lock()
	defer auth.mu.Unlock()
	done := make(chan error, 1)
	go func() {
		_, err := auth.Heartbeat(1, "b:1", 1, "/j1")
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("heartbeat during reconfiguration = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("heartbeat blocked behind the reconfiguration lock")
	}
	if got := auth.JournalDir(1); got != "/j1" {
		t.Fatalf("journal dir not recorded lock-free: %q", got)
	}
}

// TestResumeFromPersistedMap: the promoted-standby constructor path — a
// Resume map with an EpochFloor yields an authority whose first epoch is
// strictly above the floor and whose map advertises the new SelfID.
func TestResumeFromPersistedMap(t *testing.T) {
	persisted := &placement.ClusterMap{
		Epoch: 37,
		Daemons: []placement.DaemonInfo{
			{ID: 0, Addr: "old-auth:1", Speed: 1},
			{ID: 1, Addr: "b:1", Speed: 2},
		},
		Assign:    map[string]int{"vol00": 0, "vol01": 1},
		Authority: 0,
	}
	auth, err := NewAuthority(AuthorityConfig{
		Resume:     persisted,
		SelfID:     0,
		EpochFloor: persisted.Epoch + PromotionEpochJump,
		Dial:       func(string) (*wire.Client, error) { return nil, errors.New("no network") },
	})
	if err != nil {
		t.Fatal(err)
	}
	cm := auth.Map()
	if cm.Epoch <= persisted.Epoch+PromotionEpochJump {
		t.Fatalf("resumed epoch %d not above the floor %d", cm.Epoch, persisted.Epoch+PromotionEpochJump)
	}
	if cm.Authority != 0 {
		t.Fatalf("resumed map advertises authority %d, want 0", cm.Authority)
	}
	if got := cm.Assign["vol01"]; got != 1 {
		t.Fatalf("resume lost an assignment: vol01 -> %d", got)
	}
	// The old map's daemons all survive the resume.
	if _, ok := cm.Daemon(1); !ok {
		t.Fatal("resume dropped daemon 1")
	}
	// A map encode/decode round trip through the persistence image carries
	// the epoch as the image version (monotonic installs).
	im, err := EncodeMapImage(cm)
	if err != nil {
		t.Fatal(err)
	}
	if im.Version != cm.Epoch {
		t.Fatalf("map image version %d != epoch %d", im.Version, cm.Epoch)
	}
	back, err := DecodeMapImage(im)
	if err != nil {
		t.Fatal(err)
	}
	if back.Epoch != cm.Epoch || back.Authority != cm.Authority {
		t.Fatalf("map image round trip drifted: %+v", back)
	}
}
