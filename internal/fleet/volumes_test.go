package fleet

import (
	"strings"
	"testing"
	"time"

	"anufs/internal/live"
	"anufs/internal/namespace"
	"anufs/internal/placement"
	"anufs/internal/sharedisk"
	"anufs/internal/volume"
	"anufs/internal/wire"
)

// TestVolumeLifecycleOverWire: create/list/set-quota/set-policy/delete
// travel client → fleet dispatch → authority, and the guard rails hold
// (reserved names, unknown policies, deleting a volume with live data).
func TestVolumeLifecycleOverWire(t *testing.T) {
	f := startFleet(t, []float64{1, 1}, nil)
	c, err := wire.Dial(f.daemons[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	e0 := f.auth.Epoch()
	epoch, err := c.VolumeCreate("acme")
	if err != nil {
		t.Fatal(err)
	}
	if epoch <= e0 {
		t.Fatalf("volume create did not bump the epoch: %d -> %d", e0, epoch)
	}
	if _, err := c.VolumeCreate("__system"); err == nil {
		t.Fatal("reserved volume name accepted")
	}
	if _, err := c.VolumeSetPolicy("acme", "bogus"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := c.VolumeSetPolicy("acme", volume.PolicyPack); err != nil {
		t.Fatal(err)
	}
	vols, version, err := c.VolumeList()
	if err != nil {
		t.Fatal(err)
	}
	if version < 3 {
		t.Fatalf("registry version %d after two mutations", version)
	}
	names := map[string]volume.Info{}
	for _, v := range vols {
		names[v.Name] = v
	}
	if _, ok := names[namespace.DefaultVolume]; !ok {
		t.Fatal("default volume missing from list")
	}
	if got := names["acme"].Policy; got != volume.PolicyPack {
		t.Fatalf("acme policy %q, want pack", got)
	}

	r := f.router(t)
	if err := r.CreateFileSet("acme/data"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.VolumeDelete("acme"); err == nil || !strings.Contains(err.Error(), "still owns") {
		t.Fatalf("deleting a volume with live file sets: %v", err)
	}
	// A file set in a volume nobody created is refused at placement.
	if err := r.CreateFileSet("ghost/data"); err == nil || !strings.Contains(err.Error(), "unknown volume") {
		t.Fatalf("file set in unknown volume: %v", err)
	}
	// Volume ops are authority-only: a non-authority daemon refuses rather
	// than answering from its replica.
	c1, err := wire.Dial(f.daemons[1].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.VolumeCreate("elsewhere"); err == nil || !strings.Contains(err.Error(), "not the authority") {
		t.Fatalf("non-authority daemon accepted a volume op: %v", err)
	}
}

// TestFileSetQuotaTyped: a tenant at MaxFileSets gets the machine-readable
// quota-exceeded code, not a string to parse.
func TestFileSetQuotaTyped(t *testing.T) {
	f := startFleet(t, []float64{1, 1}, nil)
	c, err := wire.Dial(f.daemons[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.VolumeCreate("tenant"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.VolumeSetQuota("tenant", 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	r := f.router(t)
	if err := r.CreateFileSet("tenant/a"); err != nil {
		t.Fatal(err)
	}
	err = r.CreateFileSet("tenant/b")
	if err == nil {
		t.Fatal("second file set admitted over a MaxFileSets=1 quota")
	}
	if !wire.IsQuotaExceeded(err) {
		t.Fatalf("quota rejection not typed: %v (code %q)", err, wire.ErrorCode(err))
	}
	// Raising the quota unblocks the tenant.
	if _, err := c.VolumeSetQuota("tenant", 2, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.CreateFileSet("tenant/b"); err != nil {
		t.Fatalf("create after quota raise: %v", err)
	}
}

// TestOpRateQuotaTyped: the op-rate token bucket at the owning daemon's
// gate throttles a tenant with the typed code — including when the owner
// is not the authority daemon, which proves the registry replicated.
func TestOpRateQuotaTyped(t *testing.T) {
	f := startFleet(t, []float64{1, 1}, nil)
	c, err := wire.Dial(f.daemons[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.VolumeCreate("slow"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.VolumeSetQuota("slow", 0, 3, 0); err != nil { // 3 ops/s per daemon
		t.Fatal(err)
	}
	r := f.router(t)
	if err := r.CreateFileSet("slow/fs"); err != nil {
		t.Fatal(err)
	}
	// Wait for the owning member (possibly daemon 1) to install the quota'd
	// registry from the publish push or its poll loop.
	owner := f.auth.Map().Assign["slow/fs"]
	deadline := time.Now().Add(5 * time.Second)
	for {
		vols, _ := f.daemons[owner].member.Volumes()
		found := false
		for _, v := range vols {
			if v.Name == "slow" && v.Quota.OpRate == 3 {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon %d never installed the quota'd registry", owner)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Burst is ~3 tokens (one already spent by the gated create if the
	// registry landed first); hammering far past it must trip the bucket.
	var denied error
	for i := 0; i < 20 && denied == nil; i++ {
		if err := r.Create("slow/fs", "/p"+string(rune('a'+i)), sharedisk.Record{Size: 1}); err != nil {
			denied = err
		}
	}
	if denied == nil {
		t.Fatal("20 immediate ops never tripped a 3 ops/s bucket")
	}
	if !wire.IsQuotaExceeded(denied) {
		t.Fatalf("op-rate rejection not typed: %v (code %q)", denied, wire.ErrorCode(denied))
	}
}

// TestPackPolicyColocates: a pack-policy volume's file sets all land on
// one daemon; a spread volume's scatter across the fleet.
func TestPackPolicyColocates(t *testing.T) {
	f := startFleet(t, []float64{1, 1, 1}, nil)
	c, err := wire.Dial(f.daemons[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, name := range []string{"cold", "hot"} {
		if _, err := c.VolumeCreate(name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.VolumeSetPolicy("cold", volume.PolicyPack); err != nil {
		t.Fatal(err)
	}
	r := f.router(t)
	fileSets := []string{"f0", "f1", "f2", "f3", "f4", "f5"}
	for _, fs := range fileSets {
		if err := r.CreateFileSet("cold/" + fs); err != nil {
			t.Fatal(err)
		}
		if err := r.CreateFileSet("hot/" + fs); err != nil {
			t.Fatal(err)
		}
	}
	cm := f.auth.Map()
	coldOwners := map[int]bool{}
	hotOwners := map[int]bool{}
	for _, fs := range fileSets {
		coldOwners[cm.Assign["cold/"+fs]] = true
		hotOwners[cm.Assign["hot/"+fs]] = true
	}
	if len(coldOwners) != 1 {
		t.Fatalf("pack volume spread across %d daemons: %v", len(coldOwners), coldOwners)
	}
	// Deterministic for these names and equal speeds: the mapper scatters
	// six file sets over three daemons.
	if len(hotOwners) < 2 {
		t.Fatalf("spread volume packed onto %d daemon(s): %v", len(hotOwners), hotOwners)
	}
}

// TestQuotaSurvivesFailover is the acceptance scenario for volume
// durability: the registry is persisted through the shared disk (the same
// image machinery the log shipper replicates), the authority daemon dies
// without any graceful teardown, a standby promotes from the persisted
// map + registry images, and the tenant that was at its file-set quota is
// STILL capped — with the same machine-readable code.
func TestQuotaSurvivesFailover(t *testing.T) {
	shared := sharedisk.NewStore(0)

	// Boot a 2-daemon fleet whose authority persists both images into the
	// shared store — the in-process stand-in for journal + log shipping.
	var daemons []*testDaemon
	for i := 0; i < 2; i++ {
		d := &testDaemon{id: i, disk: sharedisk.NewStore(0)}
		cfg := live.DefaultConfig()
		cfg.Window = time.Hour
		cfg.OpCost = 0
		cfg.RetryBudget = 200 * time.Millisecond
		clus, err := live.NewCluster(cfg, d.disk, map[int]float64{0: 1})
		if err != nil {
			t.Fatal(err)
		}
		d.clus = clus
		d.srv = wire.NewServer(clus)
		addr, err := d.srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		d.addr = addr
		daemons = append(daemons, d)
		t.Cleanup(func() { d.srv.Close(); d.clus.Stop() })
	}
	infos := []placement.DaemonInfo{
		{ID: 0, Addr: daemons[0].addr, Speed: 1},
		{ID: 1, Addr: daemons[1].addr, Speed: 1},
	}
	auth, err := NewAuthority(AuthorityConfig{
		Daemons: infos,
		Dial:    testDial,
		Persist: func(cm *placement.ClusterMap) error {
			im, err := EncodeMapImage(cm)
			if err != nil {
				return err
			}
			return shared.Install(MapFileSet, im)
		},
		PersistVolumes: func(vols []volume.Info, version uint64) error {
			im, err := volume.EncodeImage(vols, version)
			if err != nil {
				return err
			}
			return shared.Install(volume.VolumesFileSet, im)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range daemons {
		mc := MemberConfig{ID: d.id, Cluster: d.clus, Disk: d.disk,
			DrainTimeout: 2 * time.Second, PollInterval: 20 * time.Millisecond, Dial: testDial}
		if d.id == 0 {
			mc.Authority = auth
		} else {
			mc.AuthorityAddr = daemons[0].addr
		}
		m, err := NewMember(mc, auth.Map())
		if err != nil {
			t.Fatal(err)
		}
		d.member = m
		d.srv.SetFleet(m)
		m.Start()
	}
	defer daemons[1].member.Stop()

	c0, err := wire.Dial(daemons[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c0.VolumeCreate("tenant"); err != nil {
		t.Fatal(err)
	}
	if _, err := c0.VolumeSetQuota("tenant", 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c0.Assign("tenant/a", -1); err != nil {
		t.Fatal(err)
	}
	if _, err := c0.Assign("tenant/b", -1); !wire.IsQuotaExceeded(err) {
		t.Fatalf("pre-failover: %v (code %q)", err, wire.ErrorCode(err))
	}
	c0.Close()

	// Kill the authority daemon: no drain, no handoff, no leave — the
	// in-process equivalent of SIGKILL. Its member is deliberately never
	// stopped gracefully.
	daemons[0].srv.Close()
	auth.Stop()

	// Promote daemon 1 from the shared disk's replicated images.
	mapIm, err := shared.Load(MapFileSet)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := DecodeMapImage(mapIm)
	if err != nil {
		t.Fatal(err)
	}
	volIm, err := shared.Load(volume.VolumesFileSet)
	if err != nil {
		t.Fatal(err)
	}
	vols, vver, err := volume.DecodeImage(volIm)
	if err != nil {
		t.Fatal(err)
	}
	if vver < 3 {
		t.Fatalf("replicated registry version %d, want every mutation captured", vver)
	}
	promoted, err := NewAuthority(AuthorityConfig{
		Resume:               cm,
		SelfID:               1,
		EpochFloor:           cm.Epoch + PromotionEpochJump,
		ResumeVolumes:        vols,
		ResumeVolumesVersion: vver,
		Dial:                 testDial,
	})
	if err != nil {
		t.Fatal(err)
	}
	daemons[1].member.Stop()
	pm, err := NewMember(MemberConfig{ID: 1, Cluster: daemons[1].clus, Disk: daemons[1].disk,
		Authority: promoted, DrainTimeout: 2 * time.Second, Dial: testDial}, promoted.Map())
	if err != nil {
		t.Fatal(err)
	}
	daemons[1].srv.SetFleet(pm)
	pm.Start()
	defer pm.Stop()

	c1, err := wire.Dial(daemons[1].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	pvols, pver, err := c1.VolumeList()
	if err != nil {
		t.Fatal(err)
	}
	if pver != vver {
		t.Fatalf("promoted registry version %d, persisted %d", pver, vver)
	}
	found := false
	for _, v := range pvols {
		if v.Name == "tenant" && v.Quota.MaxFileSets == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("promoted authority lost the tenant quota: %+v", pvols)
	}
	// The tenant is still at quota (tenant/a survived in the resumed map),
	// and the denial is still machine-readable.
	if _, err := c1.Assign("tenant/c", -1); !wire.IsQuotaExceeded(err) {
		t.Fatalf("post-promotion: %v (code %q)", err, wire.ErrorCode(err))
	}
}
