package fleet

import (
	"strings"
	"testing"
	"time"

	"anufs/internal/live"
	"anufs/internal/placement"
	"anufs/internal/sharedisk"
	"anufs/internal/wire"
)

// testDaemon is one in-process anufsd stand-in: its own disk, cluster,
// wire server, and fleet member.
type testDaemon struct {
	id     int
	addr   string
	disk   *sharedisk.Store
	clus   *live.Cluster
	srv    *wire.Server
	member *Member
}

// testFleet wires n daemons together; daemon 0 hosts the authority.
type testFleet struct {
	auth    *Authority
	daemons []*testDaemon
}

func testDial(addr string) (*wire.Client, error) {
	c, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	c.SetTimeout(5 * time.Second)
	return c, nil
}

// startFleet launches n single-server daemons over loopback with the given
// per-daemon speeds (len == n). Background tuning is disabled so file sets
// only move when the fleet moves them.
func startFleet(t testing.TB, speeds []float64, tweak func(i int, cfg *MemberConfig)) *testFleet {
	t.Helper()
	f := &testFleet{}
	infos := make([]placement.DaemonInfo, len(speeds))
	for i, sp := range speeds {
		d := &testDaemon{id: i, disk: sharedisk.NewStore(0)}
		cfg := live.DefaultConfig()
		cfg.Window = time.Hour // no background tuning during tests
		cfg.OpCost = 0
		cfg.RetryBudget = 200 * time.Millisecond
		clus, err := live.NewCluster(cfg, d.disk, map[int]float64{0: 1})
		if err != nil {
			t.Fatal(err)
		}
		d.clus = clus
		d.srv = wire.NewServer(clus)
		addr, err := d.srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		d.addr = addr
		infos[i] = placement.DaemonInfo{ID: i, Addr: addr, Speed: sp}
		f.daemons = append(f.daemons, d)
	}
	auth, err := NewAuthority(AuthorityConfig{Daemons: infos, Dial: testDial})
	if err != nil {
		t.Fatal(err)
	}
	f.auth = auth
	for _, d := range f.daemons {
		mc := MemberConfig{
			ID:           d.id,
			Cluster:      d.clus,
			Disk:         d.disk,
			DrainTimeout: 2 * time.Second,
			PollInterval: 20 * time.Millisecond,
			Dial:         testDial,
		}
		if d.id == 0 {
			mc.Authority = auth
		} else {
			mc.AuthorityAddr = f.daemons[0].addr
		}
		if tweak != nil {
			tweak(d.id, &mc)
		}
		m, err := NewMember(mc, auth.Map())
		if err != nil {
			t.Fatal(err)
		}
		d.member = m
		d.srv.SetFleet(m)
		m.Start()
	}
	t.Cleanup(func() {
		for _, d := range f.daemons {
			d.member.Stop()
			d.srv.Close()
			d.clus.Stop()
		}
	})
	return f
}

func (f *testFleet) router(t testing.TB) *Router {
	t.Helper()
	r, err := NewRouter(RouterConfig{
		AuthorityAddr: f.daemons[0].addr,
		Budget:        5 * time.Second,
		Dial:          testDial,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

// TestCreateRoutesToOwner: a created file set is placed by the authority
// and every routed op lands on its owning daemon.
func TestCreateRoutesToOwner(t *testing.T) {
	f := startFleet(t, []float64{1, 1}, nil)
	r := f.router(t)
	if err := r.CreateFileSet("vol00"); err != nil {
		t.Fatal(err)
	}
	if err := r.Create("vol00", "/a", sharedisk.Record{Size: 7}); err != nil {
		t.Fatal(err)
	}
	rec, err := r.Stat("vol00", "/a")
	if err != nil || rec.Size != 7 {
		t.Fatalf("Stat = %+v, %v", rec, err)
	}
	cm := f.auth.Map()
	owner, ok := cm.Owner("vol00")
	if !ok {
		t.Fatal("vol00 not in the map after CreateFileSet")
	}
	// The owner actually has it; the other daemon does not.
	for _, d := range f.daemons {
		has := false
		for _, fs := range d.disk.FileSets() {
			if fs == "vol00" {
				has = true
			}
		}
		if want := d.id == owner.ID; has != want {
			// The disk only sees it after a flush; check serving instead.
			d.member.mu.Lock()
			ready := d.member.ready["vol00"]
			d.member.mu.Unlock()
			if ready != want {
				t.Fatalf("daemon %d ready=%v, want %v", d.id, ready, want)
			}
		}
	}
}

// TestHandoffMovesFileSetLive: an assign to the other daemon runs a live
// handoff — data survives, the donor fences, the recipient serves, and the
// epoch advances.
func TestHandoffMovesFileSetLive(t *testing.T) {
	f := startFleet(t, []float64{1, 1}, nil)
	r := f.router(t)
	if err := r.CreateFileSet("vol00"); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/a", "/b", "/c"} {
		if err := r.Create("vol00", p, sharedisk.Record{Size: 1}); err != nil {
			t.Fatal(err)
		}
	}
	from := f.auth.Map().Assign["vol00"]
	to := 1 - from
	before := f.auth.Epoch()

	epoch, err := f.auth.Assign("vol00", to)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != before+1 {
		t.Fatalf("epoch after handoff = %d, want %d", epoch, before+1)
	}
	if got := f.auth.Map().Assign["vol00"]; got != to {
		t.Fatalf("owner after handoff = %d, want %d", got, to)
	}

	// Data intact through the router (which refetches transparently).
	for _, p := range []string{"/a", "/b", "/c"} {
		if rec, err := r.Stat("vol00", p); err != nil || rec.Size != 1 {
			t.Fatalf("Stat %s after handoff = %+v, %v", p, rec, err)
		}
	}
	// The donor fences: a direct (stale) client gets wrong-owner with the
	// new epoch.
	dc, err := testDial(f.daemons[from].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()
	_, err = dc.Stat("vol00", "/a")
	gotEpoch, ok := wire.IsWrongOwner(err)
	if !ok {
		t.Fatalf("donor served a fenced file set: err = %v", err)
	}
	if gotEpoch != epoch {
		t.Fatalf("wrong-owner epoch = %d, want %d", gotEpoch, epoch)
	}
	// The donor dropped its copy (journaled), the recipient has one.
	for _, fs := range f.daemons[from].disk.FileSets() {
		if fs == "vol00" {
			t.Fatal("donor still has vol00 on disk after handoff")
		}
	}
	if _, err := f.daemons[to].disk.Load("vol00"); err != nil {
		t.Fatalf("recipient disk missing vol00: %v", err)
	}
	if n := f.daemons[from].member.Counters().Snapshot()[CtrHandoffs]; n != 1 {
		t.Fatalf("donor handoff counter = %d, want 1", n)
	}
	if n := f.daemons[to].member.Counters().Snapshot()[CtrAdopts]; n != 1 {
		t.Fatalf("recipient adopt counter = %d, want 1", n)
	}
}

// TestHandoffFailureRollsBack: when the recipient is unreachable the donor
// rolls itself back, keeps serving, and the map keeps its epoch.
func TestHandoffFailureRollsBack(t *testing.T) {
	f := startFleet(t, []float64{1, 1}, nil)
	r := f.router(t)
	if err := r.CreateFileSet("vol00"); err != nil {
		t.Fatal(err)
	}
	if err := r.Create("vol00", "/a", sharedisk.Record{Size: 9}); err != nil {
		t.Fatal(err)
	}
	from := f.auth.Map().Assign["vol00"]
	to := 1 - from
	before := f.auth.Epoch()

	// Kill the recipient's server so the donor's transfer fails.
	f.daemons[to].srv.Close()

	if _, err := f.auth.Assign("vol00", to); err == nil {
		t.Fatal("handoff to a dead recipient succeeded")
	}
	if got := f.auth.Epoch(); got != before {
		t.Fatalf("epoch after failed handoff = %d, want %d", got, before)
	}
	if got := f.auth.Map().Assign["vol00"]; got != from {
		t.Fatalf("owner after failed handoff = %d, want %d", got, from)
	}
	// Donor still serves the file set (rolled back).
	if rec, err := r.Stat("vol00", "/a"); err != nil || rec.Size != 9 {
		t.Fatalf("Stat after failed handoff = %+v, %v", rec, err)
	}
	if n := f.daemons[from].member.Counters().Snapshot()[CtrHandoffFailures]; n != 1 {
		t.Fatalf("donor handoff-failure counter = %d, want 1", n)
	}
}

// TestDrainTimeoutAbortsHandoff: a stuck in-flight operation makes the
// drain time out; the handoff fails and the donor keeps serving.
func TestDrainTimeoutAbortsHandoff(t *testing.T) {
	f := startFleet(t, []float64{1, 1}, func(i int, cfg *MemberConfig) {
		cfg.DrainTimeout = 100 * time.Millisecond
	})
	r := f.router(t)
	if err := r.CreateFileSet("vol00"); err != nil {
		t.Fatal(err)
	}
	from := f.auth.Map().Assign["vol00"]
	donor := f.daemons[from].member

	// Hold an admitted operation open across the handoff attempt.
	release, err := donor.Gate(wire.OpStat, "vol00")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.auth.Assign("vol00", 1-from); err == nil ||
		!strings.Contains(err.Error(), "drain") {
		t.Fatalf("handoff with a stuck op = %v, want drain timeout", err)
	}
	release()
	// Donor rolled back and still serves.
	if err := r.Create("vol00", "/x", sharedisk.Record{}); err != nil {
		t.Fatal(err)
	}
	// With the operation released the same move now succeeds.
	if _, err := f.auth.Assign("vol00", 1-from); err != nil {
		t.Fatal(err)
	}
}

// TestStaleRouterRetriesOncePerRefetch is the satellite regression test: a
// client holding a stale map retries a wrong-owner rejection at most once
// per refetch that reaches the rejecting epoch — never a retry storm when
// the map cannot advance.
func TestStaleRouterRetriesOncePerRefetch(t *testing.T) {
	f := startFleet(t, []float64{1, 1}, nil)
	r := f.router(t)
	if err := r.CreateFileSet("vol00"); err != nil {
		t.Fatal(err)
	}

	// Phase 1: the daemon keeps answering wrong-owner with an epoch the
	// authority never reaches. The attempt must run exactly once.
	cur := f.auth.Epoch()
	short, err := NewRouter(RouterConfig{
		AuthorityAddr: f.daemons[0].addr,
		Budget:        300 * time.Millisecond,
		Dial:          testDial,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer short.Close()
	calls := 0
	err = short.Do("vol00", func(placement.DaemonInfo, Caller) error {
		calls++
		return &wire.WrongOwnerError{Epoch: cur + 5}
	})
	if err == nil || !strings.Contains(err.Error(), "never reached epoch") {
		t.Fatalf("Do against an unreachable epoch = %v", err)
	}
	if calls != 1 {
		t.Fatalf("op attempted %d times while the map was stuck, want exactly 1", calls)
	}

	// Phase 2: the epoch does advance (a real handoff) — one refetch, one
	// retry, success.
	from := f.auth.Map().Assign["vol00"]
	stale := f.router(t) // caches the pre-handoff map
	if _, err := f.auth.Assign("vol00", 1-from); err != nil {
		t.Fatal(err)
	}
	calls = 0
	err = stale.Do("vol00", func(_ placement.DaemonInfo, c Caller) error {
		calls++
		_, err := c.Call(wire.Request{Op: wire.OpStat, FileSet: "vol00", Path: "/nope"})
		if err != nil && strings.Contains(err.Error(), "no such path") {
			return nil // reached the owner; the miss is expected
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("op attempted %d times across one refetch, want exactly 2 (reject + retry)", calls)
	}
	if n := stale.Counters().Snapshot()["fleet_router_wrong_owner"]; n != 1 {
		t.Fatalf("wrong-owner counter = %d, want 1", n)
	}
}

// TestRebalanceBySpeed: with lopsided speeds, rebalance moves file sets
// toward the fast daemon, one epoch per move, and all data survives.
func TestRebalanceBySpeed(t *testing.T) {
	f := startFleet(t, []float64{1, 4}, nil)
	r := f.router(t)
	names := []string{"vol00", "vol01", "vol02", "vol03", "vol04", "vol05"}
	for _, fs := range names {
		if err := r.CreateFileSet(fs); err != nil {
			t.Fatal(err)
		}
		if err := r.Create(fs, "/seed", sharedisk.Record{Size: 3}); err != nil {
			t.Fatal(err)
		}
	}
	// Pin everything to the slow daemon, then let rebalance undo it.
	for _, fs := range names {
		if _, err := f.auth.Assign(fs, 0); err != nil {
			t.Fatal(err)
		}
	}
	epoch, err := f.auth.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	cm := f.auth.Map()
	if cm.Epoch != epoch {
		t.Fatalf("Rebalance returned epoch %d, map at %d", epoch, cm.Epoch)
	}
	fast := len(cm.FileSetsOf(1))
	if fast < len(names)/2 {
		t.Fatalf("fast daemon owns %d of %d file sets after rebalance", fast, len(names))
	}
	for _, fs := range names {
		if rec, err := r.Stat(fs, "/seed"); err != nil || rec.Size != 3 {
			t.Fatalf("Stat %s after rebalance = %+v, %v", fs, rec, err)
		}
	}
}

// TestJoinModeMemberConvergesByPoll: a member that missed the push (its
// server was not reachable at publish time) converges via its poll loop.
func TestJoinModeMemberConvergesByPoll(t *testing.T) {
	f := startFleet(t, []float64{1, 1}, nil)
	r := f.router(t)
	if err := r.CreateFileSet("vol00"); err != nil {
		t.Fatal(err)
	}
	want := f.auth.Epoch()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if f.daemons[1].member.CurrentMap().Epoch >= want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("joining member stuck at epoch %d, want %d",
				f.daemons[1].member.CurrentMap().Epoch, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestUnplacedFileSetRejected: operations on a file set absent from the
// map fail with a routable message, not a hang.
func TestUnplacedFileSetRejected(t *testing.T) {
	f := startFleet(t, []float64{1, 1}, nil)
	c, err := testDial(f.daemons[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Stat("ghost", "/a"); err == nil ||
		!strings.Contains(err.Error(), unplacedMsg) {
		t.Fatalf("op on unplaced file set = %v", err)
	}
}

// TestRouterSyncFansOut: Sync checkpoints every daemon.
func TestRouterSyncFansOut(t *testing.T) {
	f := startFleet(t, []float64{1, 1}, nil)
	r := f.router(t)
	if err := r.CreateFileSet("vol00"); err != nil {
		t.Fatal(err)
	}
	if err := r.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestAdoptIdempotentRetry: re-sending a completed adopt (the donor's
// retry after a lost ack) is accepted without reinstalling.
func TestAdoptIdempotentRetry(t *testing.T) {
	f := startFleet(t, []float64{1, 1}, nil)
	r := f.router(t)
	if err := r.CreateFileSet("vol00"); err != nil {
		t.Fatal(err)
	}
	from := f.auth.Map().Assign["vol00"]
	to := 1 - from
	if _, err := f.auth.Assign("vol00", to); err != nil {
		t.Fatal(err)
	}
	cm := f.auth.Map()
	encoded, err := cm.Encode()
	if err != nil {
		t.Fatal(err)
	}
	adopts := f.daemons[to].member.Counters().Snapshot()[CtrAdopts]
	c, err := testDial(f.daemons[to].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Adopt(cm.Epoch, "vol00", nil, encoded); err != nil {
		t.Fatalf("idempotent adopt retry = %v", err)
	}
	if n := f.daemons[to].member.Counters().Snapshot()[CtrAdopts]; n != adopts {
		t.Fatalf("retry re-ran the adopt: counter %d -> %d", adopts, n)
	}
}
