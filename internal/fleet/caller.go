package fleet

import (
	"fmt"
	"sync"

	"anufs/internal/metrics"
	"anufs/internal/placement"
	"anufs/internal/wire"
)

// Caller is the transport the router works over: anything that can carry
// one wire request/response exchange. *wire.Client satisfies it (one
// line-mode connection), and so do the sdk's pipelined Conn and Pool —
// the router's retry discipline is transport-agnostic because every
// implementation surfaces errors through wire.ResponseError's typed
// vocabulary.
type Caller interface {
	Call(req wire.Request) (wire.Response, error)
	Close() error
}

// Map-cache counter names.
const (
	CtrMapFetches  = "fleet_map_fetches"
	CtrMapPeerHits = "fleet_map_peer_hits"
)

// MapCache is a shared epoch-floored cluster-map cache: many routers (or
// many gateway connections) read one cached map, and a wrong-owner
// rejection raises the floor (Invalidate) so the next Get refetches until
// the map reaches that epoch. Sources are tried in order — peers first,
// authority last, by convention — and a refresh stops at the first source
// whose map satisfies the floor, which is what lets a tier of gateways
// absorb map churn without stampeding the authority.
type MapCache struct {
	sources  []string
	dial     func(addr string) (Caller, error)
	counters *metrics.CounterSet

	mu     sync.Mutex
	conns  map[string]Caller
	cur    *placement.ClusterMap
	floor  uint64
	closed bool
}

// NewMapCache builds a cache over the ordered map sources. counters may
// be nil (private accounting).
func NewMapCache(sources []string, dial func(addr string) (Caller, error), counters *metrics.CounterSet) *MapCache {
	if counters == nil {
		counters = metrics.NewCounterSet()
	}
	return &MapCache{
		sources:  sources,
		dial:     dial,
		counters: counters,
		conns:    map[string]Caller{},
	}
}

// Cached returns the cached map without any fetch (nil before the first
// successful Refresh).
func (m *MapCache) Cached() *placement.ClusterMap {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur
}

// Invalidate raises the epoch floor: the cached map is considered stale
// until a refresh reaches at least epoch. Called with the epoch carried
// by a wrong-owner rejection.
func (m *MapCache) Invalidate(epoch uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if epoch > m.floor {
		m.floor = epoch
	}
}

// Get returns the cached map when it satisfies the floor, refreshing
// otherwise. The cached (possibly stale) map is returned alongside the
// error when every source fails — callers route on their best knowledge.
func (m *MapCache) Get() (*placement.ClusterMap, error) {
	m.mu.Lock()
	cur, floor := m.cur, m.floor
	m.mu.Unlock()
	if cur != nil && cur.Epoch >= floor {
		return cur, nil
	}
	return m.Refresh()
}

// Refresh fetches the map from the sources in order, installing any map
// newer than the cached one and stopping at the first source that
// satisfies the floor. Connections are dialed lazily, cached, and dropped
// on call failure; no network I/O happens under the cache lock. The
// error is non-nil only when no source answered.
func (m *MapCache) Refresh() (*placement.ClusterMap, error) {
	m.mu.Lock()
	floor := m.floor
	m.mu.Unlock()
	var firstErr error
	answered := false
	for i, addr := range m.sources {
		c, err := m.conn(addr)
		if err == nil {
			var resp wire.Response
			resp, err = c.Call(wire.Request{Op: wire.OpMap})
			if err != nil {
				m.drop(addr)
			} else {
				var cm *placement.ClusterMap
				cm, err = placement.DecodeClusterMap(resp.Map)
				if err == nil {
					answered = true
					m.counters.Add(CtrMapFetches, 1)
					m.install(cm)
					if cm.Epoch >= floor {
						if i < len(m.sources)-1 {
							m.counters.Add(CtrMapPeerHits, 1)
						}
						break
					}
				}
			}
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("fleet: map source %s: %w", addr, err)
		}
	}
	cur := m.Cached()
	if answered {
		return cur, nil
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("fleet: map cache has no sources")
	}
	return cur, firstErr
}

// install keeps the newer of the cached and fetched maps (maps only move
// forward).
func (m *MapCache) install(cm *placement.ClusterMap) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cur == nil || cm.Epoch > m.cur.Epoch {
		m.cur = cm
	}
}

// conn returns the cached connection to addr, dialing on first use (the
// dial runs outside the lock; a lost race closes the extra connection).
func (m *MapCache) conn(addr string) (Caller, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, fmt.Errorf("fleet: map cache closed")
	}
	if c, ok := m.conns[addr]; ok {
		m.mu.Unlock()
		return c, nil
	}
	m.mu.Unlock()
	c, err := m.dial(addr)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if prev, ok := m.conns[addr]; ok {
		m.mu.Unlock()
		go c.Close()
		return prev, nil
	}
	if m.closed {
		m.mu.Unlock()
		go c.Close()
		return nil, fmt.Errorf("fleet: map cache closed")
	}
	m.conns[addr] = c
	m.mu.Unlock()
	return c, nil
}

// drop discards a cached connection (it errored; the next use redials).
func (m *MapCache) drop(addr string) {
	m.mu.Lock()
	c, ok := m.conns[addr]
	delete(m.conns, addr)
	m.mu.Unlock()
	if ok {
		c.Close()
	}
}

// Close tears down the cached source connections; further use errors.
func (m *MapCache) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	conns := m.conns
	m.conns = map[string]Caller{}
	m.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}
