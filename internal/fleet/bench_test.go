package fleet

import (
	"fmt"
	"testing"
	"time"

	"anufs/internal/live"
	"anufs/internal/sharedisk"
	"anufs/internal/wire"
)

// benchStartFleet launches n equal-speed daemons (startFleet takes any
// testing.TB, so benchmarks share the harness).
func benchStartFleet(b *testing.B, n int) *testFleet {
	b.Helper()
	speeds := make([]float64, n)
	for i := range speeds {
		speeds[i] = 1
	}
	return startFleet(b, speeds, nil)
}

// BenchmarkFleetRoutedOp measures one metadata op through the full fleet
// path: router map lookup -> TCP -> gate -> cluster -> response.
// Compare against BenchmarkDirectOp (same wire path, no fleet gate or
// router) to see the sharding overhead.
func BenchmarkFleetRoutedOp(b *testing.B) {
	f := benchStartFleet(b, 3)
	r, err := NewRouter(RouterConfig{AuthorityAddr: f.daemons[0].addr, Dial: testDial})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	if err := r.CreateFileSet("vol00"); err != nil {
		b.Fatal(err)
	}
	if err := r.Create("vol00", "/a", sharedisk.Record{Size: 1}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Stat("vol00", "/a"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDirectOp is the baseline: the same Stat against a single
// non-fleet daemon over the wire.
func BenchmarkDirectOp(b *testing.B) {
	disk := sharedisk.NewStore(0)
	cfg := live.DefaultConfig()
	cfg.Window = time.Hour
	cfg.OpCost = 0
	clus, err := live.NewCluster(cfg, disk, map[int]float64{0: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer clus.Stop()
	srv := wire.NewServer(clus)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := wire.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateFileSet("vol00"); err != nil {
		b.Fatal(err)
	}
	if err := c.Create("vol00", "/a", sharedisk.Record{Size: 1}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Stat("vol00", "/a"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHandoff measures a full live handoff (fence, drain, flush,
// transfer, adopt, drop) of a small file set bouncing between two daemons.
func BenchmarkHandoff(b *testing.B) {
	f := benchStartFleet(b, 2)
	r, err := NewRouter(RouterConfig{AuthorityAddr: f.daemons[0].addr, Dial: testDial})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	if err := r.CreateFileSet("vol00"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if err := r.Create("vol00", fmt.Sprintf("/f%02d", i), sharedisk.Record{Size: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		to := 1 - f.auth.Map().Assign["vol00"]
		if _, err := f.auth.Assign("vol00", to); err != nil {
			b.Fatal(err)
		}
	}
}
