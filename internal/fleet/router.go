package fleet

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"anufs/internal/metrics"
	"anufs/internal/obs"
	"anufs/internal/placement"
	"anufs/internal/sharedisk"
	"anufs/internal/wire"
)

// DefaultRouteBudget bounds how long a routed operation keeps retrying
// through map refetches, adoption waits, and reconnects.
const DefaultRouteBudget = 10 * time.Second

// RouterConfig parameterizes a routing client.
type RouterConfig struct {
	// AuthorityAddr is where maps are fetched from (the last-resort map
	// source, and the target of assign/rebalance forwards).
	AuthorityAddr string
	// MapSources are additional map sources tried before the authority —
	// peer gateways sharing their cached maps, so N gateways converge on a
	// new epoch without all of them hitting the authority.
	MapSources []string
	// Maps shares a cluster-map cache across routers; nil builds a private
	// one from MapSources+AuthorityAddr.
	Maps *MapCache
	// Budget bounds one routed operation end to end (default
	// DefaultRouteBudget).
	Budget time.Duration
	// Obs receives per-daemon route counters; nil disables.
	Obs *obs.Registry
	// Dial overrides outbound connections; nil uses wire.Dial. Ignored
	// when DialCaller is set.
	Dial func(addr string) (*wire.Client, error)
	// DialCaller overrides outbound connections with an arbitrary Caller —
	// the sdk plugs pipelined connection pools in here. Takes precedence
	// over Dial.
	DialCaller func(addr string) (Caller, error)
}

// Router is the fleet's client side: it caches the cluster map, routes
// each operation to the owning daemon, and converges on wrong-owner
// rejections by refetching the map. The retry discipline is deliberate: a
// wrong-owner error names the epoch the daemon rejected under, and the
// router retries the operation at most once per refetch that reaches that
// epoch — no retry storm against a daemon that keeps saying no.
type Router struct {
	cfg      RouterConfig
	counters *metrics.CounterSet
	maps     *MapCache
	ownsMaps bool

	mu      sync.Mutex
	clients map[string]Caller
}

// NewRouter fetches the initial map from the authority and returns a ready
// router.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.AuthorityAddr == "" {
		return nil, fmt.Errorf("fleet: router needs an authority address")
	}
	if cfg.Budget <= 0 {
		cfg.Budget = DefaultRouteBudget
	}
	if cfg.DialCaller == nil {
		dial := cfg.Dial
		if dial == nil {
			dial = wire.Dial
		}
		cfg.DialCaller = func(addr string) (Caller, error) {
			c, err := dial(addr)
			if err != nil {
				return nil, err
			}
			return c, nil
		}
	}
	r := &Router{
		cfg:      cfg,
		counters: metrics.NewCounterSet(),
		maps:     cfg.Maps,
		clients:  map[string]Caller{},
	}
	if r.maps == nil {
		sources := append(append([]string{}, cfg.MapSources...), cfg.AuthorityAddr)
		r.maps = NewMapCache(sources, cfg.DialCaller, r.counters)
		r.ownsMaps = true
	}
	if cfg.Obs != nil {
		cfg.Obs.AddCounters(r.counters.Snapshot)
	}
	if _, err := r.Refresh(); err != nil {
		return nil, err
	}
	if r.maps.Cached() == nil {
		return nil, fmt.Errorf("fleet: no map source answered")
	}
	return r, nil
}

// Close tears down the cached daemon connections (and the map cache, when
// the router owns it). The client map is swapped out under the lock and
// the connections closed outside it, so a slow teardown cannot stall
// routers mid-refresh.
func (r *Router) Close() {
	r.mu.Lock()
	clients := r.clients
	r.clients = map[string]Caller{}
	r.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
	if r.ownsMaps {
		r.maps.Close()
	}
}

// Map returns the router's cached cluster map.
func (r *Router) Map() *placement.ClusterMap {
	return r.maps.Cached()
}

// Maps exposes the router's cluster-map cache — gateways share it across
// routers and invalidate it on epoch announcements.
func (r *Router) Maps() *MapCache { return r.maps }

// Refresh refetches the map through the cache's sources, keeping the
// cached one if every fetch is older (maps only move forward).
func (r *Router) Refresh() (*placement.ClusterMap, error) {
	cm, err := r.maps.Refresh()
	if err == nil {
		r.counters.Add("fleet_router_refreshes", 1)
	}
	return cm, err
}

// Caller returns the cached connection to addr, dialing on first use —
// exported so gateways can reach the authority through the router's
// connection cache.
func (r *Router) Caller(addr string) (Caller, error) {
	r.mu.Lock()
	if c, ok := r.clients[addr]; ok {
		r.mu.Unlock()
		return c, nil
	}
	r.mu.Unlock()
	c, err := r.cfg.DialCaller(addr)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.clients[addr]; ok {
		// Lost the dial race; keep the first connection.
		go c.Close()
		return prev, nil
	}
	r.clients[addr] = c
	return c, nil
}

// invalidate drops a cached connection (it errored; the next use redials).
func (r *Router) invalidate(addr string) {
	r.mu.Lock()
	c, ok := r.clients[addr]
	delete(r.clients, addr)
	r.mu.Unlock()
	if ok {
		c.Close()
	}
}

// transientErr reports connection-level failures worth a reconnect+retry,
// as opposed to application errors the caller must see. The decision
// lives in wire.TransientError: typed sentinels first, with one
// sanctioned text fallback for errors whose type was lost crossing the
// wire.
func transientErr(err error) bool {
	return wire.TransientError(err)
}

// Do routes one operation against the file set's owning daemon, converging
// through wrong-owner refetches, adoption waits, and reconnects within the
// route budget. fn runs against the owner's transport and is retried at
// most once per state change (new map epoch, reconnect, or backoff step) —
// it must be idempotent or check-before-write, like every wire op here.
func (r *Router) Do(fileSet string, fn func(d placement.DaemonInfo, c Caller) error) error {
	return r.do(0, fileSet, fn)
}

// do is Do with trace context: when the routed operation belongs to a
// trace (and the router has a registry), every retry event — wrong-owner
// refetch, adoption backoff, reconnect — lands in the trace as a
// "route-retry" span, so a stitched fleet timeline shows WHY a request
// crossed daemons, not just that it did.
func (r *Router) do(trace uint64, fileSet string, fn func(d placement.DaemonInfo, c Caller) error) error {
	deadline := time.Now().Add(r.cfg.Budget)
	backoff := wire.NewBackoff(5*time.Millisecond, 250*time.Millisecond)
	retrySpan := func(reason string, daemon int, start time.Time, err error) {
		if trace == 0 || r.cfg.Obs == nil {
			return
		}
		errStr := ""
		if err != nil {
			errStr = err.Error()
		}
		r.cfg.Obs.Spans.Add(obs.Span{
			Trace: trace, Name: "route-retry", Op: reason, FileSet: fileSet,
			Server: daemon, Start: start, Dur: time.Since(start), Err: errStr,
		})
	}
	var lastErr error
	for {
		cm, _ := r.maps.Get()
		if cm == nil {
			return fmt.Errorf("fleet: no cluster map")
		}
		d, placed := cm.Owner(fileSet)
		if !placed {
			return fmt.Errorf("fleet: file set %q is not in the cluster map (epoch %d)", fileSet, cm.Epoch)
		}
		attempt := time.Now()
		c, err := r.Caller(d.Addr)
		if err == nil {
			err = fn(d, c)
		}
		if err == nil {
			r.counters.Add("fleet_routed_daemon_"+strconv.Itoa(d.ID), 1)
			return nil
		}
		lastErr = err
		switch {
		case isWrongOwnerErr(err):
			epoch, _ := wire.IsWrongOwner(err)
			r.counters.Add("fleet_router_wrong_owner", 1)
			// Mark the cache stale up to the rejecting daemon's epoch, then
			// refetch until the map reaches it; only then is a retry allowed
			// — exactly one per refetch that advances far enough.
			r.maps.Invalidate(epoch)
			if !r.awaitEpoch(epoch, deadline, backoff) {
				retrySpan("wrong-owner", d.ID, attempt, err)
				return fmt.Errorf("fleet: map never reached epoch %d within the route budget: %w", epoch, lastErr)
			}
			retrySpan("wrong-owner", d.ID, attempt, err)
		case wire.IsArriving(err):
			r.counters.Add("fleet_router_arriving_waits", 1)
			ok := sleepUntil(backoff.Next(), deadline)
			retrySpan("arriving", d.ID, attempt, err)
			if !ok {
				return lastErr
			}
		case transientErr(err):
			r.counters.Add("fleet_router_reconnects", 1)
			r.invalidate(d.Addr)
			ok := sleepUntil(backoff.Next(), deadline)
			retrySpan("reconnect", d.ID, attempt, err)
			if !ok {
				return lastErr
			}
			// The daemon may have moved on while we were disconnected.
			_, _ = r.Refresh()
		case wire.IsUnplaced(err) && cm.Assign[fileSet] == d.ID:
			// The daemon has not seen the map that assigns it this file set
			// yet (our map is newer than its). Transient: it converges by
			// authority push or poll.
			ok := sleepUntil(backoff.Next(), deadline)
			retrySpan("await-assign", d.ID, attempt, err)
			if !ok {
				return lastErr
			}
		default:
			return err // application error: the caller's problem
		}
	}
}

func isWrongOwnerErr(err error) bool {
	_, ok := wire.IsWrongOwner(err)
	return ok
}

// awaitEpoch refetches the map until its epoch reaches target (true) or
// the deadline passes (false).
func (r *Router) awaitEpoch(target uint64, deadline time.Time, backoff *wire.Backoff) bool {
	for {
		cm, _ := r.Refresh()
		if cm != nil && cm.Epoch >= target {
			return true
		}
		if !sleepUntil(backoff.Next(), deadline) {
			return false
		}
	}
}

// sleepUntil sleeps d (clipped to the deadline) and reports whether the
// deadline still lies ahead.
func sleepUntil(d time.Duration, deadline time.Time) bool {
	remain := time.Until(deadline)
	if remain <= 0 {
		return false
	}
	if d > remain {
		d = remain
	}
	time.Sleep(d)
	return true
}

// --- typed convenience methods -------------------------------------------

// The typed methods speak raw wire requests through the Caller interface,
// so they work identically over a line-mode wire.Client and the sdk's
// pipelined pools.

// CallAuthority sends one request to the fleet authority, preferring the
// daemon the current map advertises (which survives a standby promotion —
// the promoted authority publishes itself in the map) and falling back to
// the configured address when the advertised one fails or is absent.
func (r *Router) CallAuthority(req wire.Request) (wire.Response, error) {
	var addrs []string
	if d, ok := r.Map().AuthorityDaemon(); ok {
		addrs = append(addrs, d.Addr)
	}
	if r.cfg.AuthorityAddr != "" && (len(addrs) == 0 || addrs[0] != r.cfg.AuthorityAddr) {
		addrs = append(addrs, r.cfg.AuthorityAddr)
	}
	var lastErr error
	for _, addr := range addrs {
		c, err := r.Caller(addr)
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := c.Call(req)
		if err != nil {
			lastErr = err
			if transientErr(err) {
				r.invalidate(addr)
				continue
			}
			return resp, err
		}
		return resp, nil
	}
	if lastErr == nil {
		lastErr = errors.New("fleet: no authority address")
	}
	return wire.Response{}, lastErr
}

// CreateFileSet creates a file set fleet-wide: unplaced file sets are first
// assigned by the authority (ANU placement), then created on their owner.
func (r *Router) CreateFileSet(fileSet string) error {
	if _, placed := r.Map().Owner(fileSet); !placed {
		resp, err := r.CallAuthority(wire.Request{Op: wire.OpAssign, FileSet: fileSet, Daemon: -1})
		if err != nil {
			return fmt.Errorf("fleet: place %q: %w", fileSet, err)
		}
		// The cache must reach the assigning epoch before routing can see
		// the new owner.
		r.maps.Invalidate(resp.Epoch)
		if _, err := r.Refresh(); err != nil {
			return err
		}
	}
	return r.Do(fileSet, func(_ placement.DaemonInfo, c Caller) error {
		_, err := c.Call(wire.Request{Op: wire.OpCreateFileSet, FileSet: fileSet})
		return err
	})
}

// Create adds a metadata record.
func (r *Router) Create(fileSet, path string, rec sharedisk.Record) error {
	return r.Do(fileSet, func(_ placement.DaemonInfo, c Caller) error {
		_, err := c.Call(wire.Request{Op: wire.OpCreate, FileSet: fileSet, Path: path, Record: &rec})
		return err
	})
}

// Stat reads a metadata record.
func (r *Router) Stat(fileSet, path string) (sharedisk.Record, error) {
	var rec sharedisk.Record
	err := r.Do(fileSet, func(_ placement.DaemonInfo, c Caller) error {
		resp, err := c.Call(wire.Request{Op: wire.OpStat, FileSet: fileSet, Path: path})
		if err != nil {
			return err
		}
		if resp.Record == nil {
			return errors.New("wire: stat returned no record")
		}
		rec = *resp.Record
		return nil
	})
	return rec, err
}

// Update overwrites a metadata record.
func (r *Router) Update(fileSet, path string, rec sharedisk.Record) error {
	return r.Do(fileSet, func(_ placement.DaemonInfo, c Caller) error {
		_, err := c.Call(wire.Request{Op: wire.OpUpdate, FileSet: fileSet, Path: path, Record: &rec})
		return err
	})
}

// Remove deletes a metadata record.
func (r *Router) Remove(fileSet, path string) error {
	return r.Do(fileSet, func(_ placement.DaemonInfo, c Caller) error {
		_, err := c.Call(wire.Request{Op: wire.OpRemove, FileSet: fileSet, Path: path})
		return err
	})
}

// List returns paths under a prefix.
func (r *Router) List(fileSet, prefix string) ([]string, error) {
	var out []string
	err := r.Do(fileSet, func(_ placement.DaemonInfo, c Caller) error {
		resp, err := c.Call(wire.Request{Op: wire.OpList, FileSet: fileSet, Path: prefix})
		if err != nil {
			return err
		}
		out = resp.Paths
		return nil
	})
	return out, err
}

// Batch applies a pre-grouped batch against one file set's owner — the
// routing half of the sdk's client-side batching. Durable batches ride
// one journal group commit on the owning daemon.
func (r *Router) Batch(fileSet string, durable bool, items []wire.BatchItem) ([]wire.BatchResult, error) {
	var results []wire.BatchResult
	err := r.Do(fileSet, func(_ placement.DaemonInfo, c Caller) error {
		resp, err := c.Call(wire.Request{Op: wire.OpBatch, FileSet: fileSet, Durable: durable, Batch: items})
		if err != nil {
			return err
		}
		if len(resp.Results) != len(items) {
			return fmt.Errorf("wire: batch of %d items got %d results", len(items), len(resp.Results))
		}
		results = resp.Results
		return nil
	})
	return results, err
}

// Sync checkpoints every daemon in the fleet (the fleet-wide durability
// barrier); the first error wins but every daemon is attempted.
func (r *Router) Sync() error { return r.SyncTraced(0, 0) }

// SyncTraced is Sync carrying trace context: every fanned-out checkpoint
// joins the caller's trace, so a stitched timeline shows the barrier
// landing on each daemon.
func (r *Router) SyncTraced(trace, parent uint64) error {
	var firstErr error
	for _, d := range r.Map().Daemons {
		c, err := r.Caller(d.Addr)
		if err == nil {
			_, err = c.Call(wire.Request{Op: wire.OpSync, Trace: trace, Parent: parent})
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("fleet: sync daemon %d: %w", d.ID, err)
		}
	}
	return firstErr
}

// Forward routes a raw request by its FileSet field — the gateway's (and
// the traced sdk client's) pass-through. The request's trace context rides
// through untouched, and routing retries join its trace as route-retry
// spans. The response keeps the caller's request ID.
func (r *Router) Forward(req wire.Request) (wire.Response, error) {
	var resp wire.Response
	err := r.do(req.Trace, req.FileSet, func(_ placement.DaemonInfo, c Caller) error {
		fwd := req
		got, err := c.Call(fwd)
		resp = got
		return err
	})
	resp.ID = req.ID
	return resp, err
}

// Counters exposes the router's counters (tests and the gateway's stats).
func (r *Router) Counters() *metrics.CounterSet { return r.counters }
