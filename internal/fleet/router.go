package fleet

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"anufs/internal/metrics"
	"anufs/internal/obs"
	"anufs/internal/placement"
	"anufs/internal/sharedisk"
	"anufs/internal/wire"
)

// DefaultRouteBudget bounds how long a routed operation keeps retrying
// through map refetches, adoption waits, and reconnects.
const DefaultRouteBudget = 10 * time.Second

// RouterConfig parameterizes a routing client.
type RouterConfig struct {
	// AuthorityAddr is where maps are fetched from.
	AuthorityAddr string
	// Budget bounds one routed operation end to end (default
	// DefaultRouteBudget).
	Budget time.Duration
	// Obs receives per-daemon route counters; nil disables.
	Obs *obs.Registry
	// Dial overrides outbound connections; nil uses wire.Dial.
	Dial func(addr string) (*wire.Client, error)
}

// Router is the fleet's client side: it caches the cluster map, routes
// each operation to the owning daemon, and converges on wrong-owner
// rejections by refetching the map. The retry discipline is deliberate: a
// wrong-owner error names the epoch the daemon rejected under, and the
// router retries the operation at most once per refetch that reaches that
// epoch — no retry storm against a daemon that keeps saying no.
type Router struct {
	cfg      RouterConfig
	counters *metrics.CounterSet

	mu      sync.Mutex
	cur     *placement.ClusterMap
	clients map[string]*wire.Client
}

// NewRouter fetches the initial map from the authority and returns a ready
// router.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.AuthorityAddr == "" {
		return nil, fmt.Errorf("fleet: router needs an authority address")
	}
	if cfg.Budget <= 0 {
		cfg.Budget = DefaultRouteBudget
	}
	if cfg.Dial == nil {
		cfg.Dial = wire.Dial
	}
	r := &Router{
		cfg:      cfg,
		counters: metrics.NewCounterSet(),
		clients:  map[string]*wire.Client{},
	}
	if cfg.Obs != nil {
		cfg.Obs.AddCounters(r.counters.Snapshot)
	}
	if _, err := r.Refresh(); err != nil {
		return nil, err
	}
	return r, nil
}

// Close tears down the cached daemon connections. The client map is
// swapped out under the lock and the connections closed outside it, so a
// slow teardown cannot stall routers mid-Refresh.
func (r *Router) Close() {
	r.mu.Lock()
	clients := r.clients
	r.clients = map[string]*wire.Client{}
	r.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
}

// Map returns the router's cached cluster map.
func (r *Router) Map() *placement.ClusterMap {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur
}

// Refresh refetches the map from the authority, keeping the cached one if
// the fetch is older (maps only move forward).
func (r *Router) Refresh() (*placement.ClusterMap, error) {
	c, err := r.client(r.cfg.AuthorityAddr)
	if err != nil {
		return r.Map(), err
	}
	encoded, err := c.ClusterMap()
	if err != nil {
		r.invalidate(r.cfg.AuthorityAddr)
		return r.Map(), err
	}
	cm, err := placement.DecodeClusterMap(encoded)
	if err != nil {
		return r.Map(), err
	}
	r.counters.Add("fleet_router_refreshes", 1)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur == nil || cm.Epoch > r.cur.Epoch {
		r.cur = cm
	}
	return r.cur, nil
}

// client returns the cached connection to addr, dialing on first use.
func (r *Router) client(addr string) (*wire.Client, error) {
	r.mu.Lock()
	if c, ok := r.clients[addr]; ok {
		r.mu.Unlock()
		return c, nil
	}
	r.mu.Unlock()
	c, err := r.cfg.Dial(addr)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.clients[addr]; ok {
		// Lost the dial race; keep the first connection.
		go c.Close()
		return prev, nil
	}
	r.clients[addr] = c
	return c, nil
}

// invalidate drops a cached connection (it errored; the next use redials).
func (r *Router) invalidate(addr string) {
	r.mu.Lock()
	c, ok := r.clients[addr]
	delete(r.clients, addr)
	r.mu.Unlock()
	if ok {
		c.Close()
	}
}

// transientErr reports connection-level failures worth a reconnect+retry,
// as opposed to application errors the caller must see.
func transientErr(err error) bool {
	if err == nil {
		return false
	}
	s := err.Error()
	return strings.Contains(s, "connection closed") ||
		strings.Contains(s, "timed out") ||
		strings.Contains(s, "wire: send:") ||
		strings.Contains(s, "connection refused") ||
		strings.Contains(s, "connection reset")
}

// Do routes one operation against the file set's owning daemon, converging
// through wrong-owner refetches, adoption waits, and reconnects within the
// route budget. fn runs against the owner's client and is retried at most
// once per state change (new map epoch, reconnect, or backoff step) — it
// must be idempotent or check-before-write, like every wire op here.
func (r *Router) Do(fileSet string, fn func(*wire.Client) error) error {
	deadline := time.Now().Add(r.cfg.Budget)
	backoff := wire.NewBackoff(5*time.Millisecond, 250*time.Millisecond)
	var lastErr error
	for {
		cm := r.Map()
		d, placed := cm.Owner(fileSet)
		if !placed {
			return fmt.Errorf("fleet: file set %q is not in the cluster map (epoch %d)", fileSet, cm.Epoch)
		}
		c, err := r.client(d.Addr)
		if err == nil {
			err = fn(c)
		}
		if err == nil {
			r.counters.Add("fleet_routed_daemon_"+strconv.Itoa(d.ID), 1)
			return nil
		}
		lastErr = err
		switch {
		case isWrongOwnerErr(err):
			epoch, _ := wire.IsWrongOwner(err)
			r.counters.Add("fleet_router_wrong_owner", 1)
			// Refetch until the map reaches the rejecting daemon's epoch;
			// only then is a retry allowed — exactly one per refetch that
			// advances far enough.
			if !r.awaitEpoch(epoch, deadline, backoff) {
				return fmt.Errorf("fleet: map never reached epoch %d within the route budget: %w", epoch, lastErr)
			}
		case wire.IsArriving(err):
			r.counters.Add("fleet_router_arriving_waits", 1)
			if !sleepUntil(backoff.Next(), deadline) {
				return lastErr
			}
		case transientErr(err):
			r.counters.Add("fleet_router_reconnects", 1)
			r.invalidate(d.Addr)
			if !sleepUntil(backoff.Next(), deadline) {
				return lastErr
			}
			// The daemon may have moved on while we were disconnected.
			_, _ = r.Refresh()
		case strings.Contains(err.Error(), unplacedMsg) && cm.Assign[fileSet] == d.ID:
			// The daemon has not seen the map that assigns it this file set
			// yet (our map is newer than its). Transient: it converges by
			// authority push or poll.
			if !sleepUntil(backoff.Next(), deadline) {
				return lastErr
			}
		default:
			return err // application error: the caller's problem
		}
	}
}

func isWrongOwnerErr(err error) bool {
	_, ok := wire.IsWrongOwner(err)
	return ok
}

// awaitEpoch refetches the map until its epoch reaches target (true) or
// the deadline passes (false).
func (r *Router) awaitEpoch(target uint64, deadline time.Time, backoff *wire.Backoff) bool {
	for {
		cm, _ := r.Refresh()
		if cm != nil && cm.Epoch >= target {
			return true
		}
		if !sleepUntil(backoff.Next(), deadline) {
			return false
		}
	}
}

// sleepUntil sleeps d (clipped to the deadline) and reports whether the
// deadline still lies ahead.
func sleepUntil(d time.Duration, deadline time.Time) bool {
	remain := time.Until(deadline)
	if remain <= 0 {
		return false
	}
	if d > remain {
		d = remain
	}
	time.Sleep(d)
	return true
}

// --- typed convenience methods -------------------------------------------

// CreateFileSet creates a file set fleet-wide: unplaced file sets are first
// assigned by the authority (ANU placement), then created on their owner.
func (r *Router) CreateFileSet(fileSet string) error {
	if _, placed := r.Map().Owner(fileSet); !placed {
		ac, err := r.client(r.cfg.AuthorityAddr)
		if err != nil {
			return err
		}
		if _, err := ac.Assign(fileSet, -1); err != nil {
			return fmt.Errorf("fleet: place %q: %w", fileSet, err)
		}
		if _, err := r.Refresh(); err != nil {
			return err
		}
	}
	return r.Do(fileSet, func(c *wire.Client) error { return c.CreateFileSet(fileSet) })
}

// Create adds a metadata record.
func (r *Router) Create(fileSet, path string, rec sharedisk.Record) error {
	return r.Do(fileSet, func(c *wire.Client) error { return c.Create(fileSet, path, rec) })
}

// Stat reads a metadata record.
func (r *Router) Stat(fileSet, path string) (sharedisk.Record, error) {
	var rec sharedisk.Record
	err := r.Do(fileSet, func(c *wire.Client) error {
		got, err := c.Stat(fileSet, path)
		rec = got
		return err
	})
	return rec, err
}

// Update overwrites a metadata record.
func (r *Router) Update(fileSet, path string, rec sharedisk.Record) error {
	return r.Do(fileSet, func(c *wire.Client) error { return c.Update(fileSet, path, rec) })
}

// Remove deletes a metadata record.
func (r *Router) Remove(fileSet, path string) error {
	return r.Do(fileSet, func(c *wire.Client) error { return c.Remove(fileSet, path) })
}

// List returns paths under a prefix.
func (r *Router) List(fileSet, prefix string) ([]string, error) {
	var out []string
	err := r.Do(fileSet, func(c *wire.Client) error {
		got, err := c.List(fileSet, prefix)
		out = got
		return err
	})
	return out, err
}

// Sync checkpoints every daemon in the fleet (the fleet-wide durability
// barrier); the first error wins but every daemon is attempted.
func (r *Router) Sync() error {
	var firstErr error
	for _, d := range r.Map().Daemons {
		c, err := r.client(d.Addr)
		if err == nil {
			err = c.Sync()
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("fleet: sync daemon %d: %w", d.ID, err)
		}
	}
	return firstErr
}

// Forward routes a raw request by its FileSet field — the gateway's
// pass-through. The response keeps the caller's request ID.
func (r *Router) Forward(req wire.Request) (wire.Response, error) {
	var resp wire.Response
	err := r.Do(req.FileSet, func(c *wire.Client) error {
		fwd := req
		got, err := c.Call(fwd)
		resp = got
		return err
	})
	resp.ID = req.ID
	return resp, err
}

// Counters exposes the router's counters (tests and the gateway's stats).
func (r *Router) Counters() *metrics.CounterSet { return r.counters }
