package placement

import (
	"fmt"
	"sort"

	"anufs/internal/hashfam"
)

// ConsistentHash is a Chord/Pastry-style baseline (paper §3): servers and
// file sets hash onto a ring, each file set is served by the first server
// clockwise from its point, and virtual nodes smooth the variance. Like
// ANU it needs no per-file-set state and moves little on membership
// change; unlike ANU the server positions are fixed by hashing, so it is
// "not sensitive to object workload heterogeneity and cannot maintain load
// balancing in the situation where objects have heterogeneous access costs
// and frequencies" (§3) — the gap the sieve/dht experiments quantify.
type ConsistentHash struct {
	seed   uint64
	vnodes int
	fam    *hashfam.Family
	ring   []ringEntry // sorted by point
}

type ringEntry struct {
	point  uint64
	server int
}

// NewConsistentHash creates the baseline with the given number of virtual
// nodes per server (classic DHTs use O(log n); 32 is a generous default
// that flatters the baseline).
func NewConsistentHash(seed uint64, vnodes int) *ConsistentHash {
	if vnodes < 1 {
		vnodes = 32
	}
	return &ConsistentHash{seed: seed, vnodes: vnodes}
}

// Name implements Policy.
func (p *ConsistentHash) Name() string { return "consistent-hash" }

// Init implements Policy.
func (p *ConsistentHash) Init(servers []int, _ []string) error {
	if len(servers) == 0 {
		return fmt.Errorf("placement: no servers")
	}
	p.fam = hashfam.New(p.seed, 0)
	p.ring = p.ring[:0]
	for _, id := range servers {
		p.addServer(id)
	}
	sort.Slice(p.ring, func(a, b int) bool { return p.ring[a].point < p.ring[b].point })
	return nil
}

func (p *ConsistentHash) addServer(id int) {
	for v := 0; v < p.vnodes; v++ {
		name := fmt.Sprintf("srv-%d-vn-%d", id, v)
		p.ring = append(p.ring, ringEntry{point: p.fam.Point64(name, 0), server: id})
	}
}

// Owner implements Policy: first ring entry clockwise from the point.
func (p *ConsistentHash) Owner(fileSet string) int {
	pt := p.fam.Point64(fileSet, 0)
	i := sort.Search(len(p.ring), func(i int) bool { return p.ring[i].point >= pt })
	if i == len(p.ring) {
		i = 0 // wrap
	}
	return p.ring[i].server
}

// Reconfigure implements Policy; consistent hashing never adapts.
func (p *ConsistentHash) Reconfigure(float64, []Report) error { return nil }

// ServerDown implements MembershipHandler: remove the server's virtual
// nodes; its arcs fall to the clockwise successors (minimal movement, the
// DHT property).
func (p *ConsistentHash) ServerDown(id int) error {
	kept := p.ring[:0]
	removed := 0
	for _, e := range p.ring {
		if e.server == id {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	if removed == 0 {
		return fmt.Errorf("placement: consistent-hash: unknown server %d", id)
	}
	if len(kept) == 0 {
		return fmt.Errorf("placement: consistent-hash: cannot remove last server")
	}
	p.ring = kept
	return nil
}

// ServerUp implements MembershipHandler.
func (p *ConsistentHash) ServerUp(id int) error {
	for _, e := range p.ring {
		if e.server == id {
			return fmt.Errorf("placement: consistent-hash: server %d already present", id)
		}
	}
	p.addServer(id)
	sort.Slice(p.ring, func(a, b int) bool { return p.ring[a].point < p.ring[b].point })
	return nil
}
