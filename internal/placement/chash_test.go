package placement

import (
	"fmt"
	"testing"
)

func TestConsistentHashCoversAndBalancesCounts(t *testing.T) {
	p := NewConsistentHash(1, 64)
	fss := fsNames(2000)
	if err := p.Init(testServers, fss); err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, fs := range fss {
		counts[p.Owner(fs)]++
	}
	if len(counts) != len(testServers) {
		t.Fatalf("only %d servers used", len(counts))
	}
	// With 64 vnodes the count balance should be within ~2x.
	min, max := 1<<30, 0
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max > 3*min {
		t.Fatalf("vnode balance poor: counts %v", counts)
	}
}

func TestConsistentHashDeterministic(t *testing.T) {
	a, b := NewConsistentHash(9, 16), NewConsistentHash(9, 16)
	fss := fsNames(100)
	if err := a.Init(testServers, fss); err != nil {
		t.Fatal(err)
	}
	if err := b.Init(testServers, fss); err != nil {
		t.Fatal(err)
	}
	for _, fs := range fss {
		if a.Owner(fs) != b.Owner(fs) {
			t.Fatalf("same seed disagrees on %s", fs)
		}
	}
	if err := a.Reconfigure(120, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConsistentHashMinimalMovementOnFailure(t *testing.T) {
	p := NewConsistentHash(3, 64)
	fss := fsNames(3000)
	if err := p.Init(testServers, fss); err != nil {
		t.Fatal(err)
	}
	before := map[string]int{}
	victimOwned := 0
	for _, fs := range fss {
		before[fs] = p.Owner(fs)
		if before[fs] == 2 {
			victimOwned++
		}
	}
	if err := p.ServerDown(2); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, fs := range fss {
		now := p.Owner(fs)
		if now == 2 {
			t.Fatalf("%s still on removed server", fs)
		}
		if now != before[fs] {
			moved++
		}
	}
	// The DHT property: only the victim's file sets move.
	if moved != victimOwned {
		t.Fatalf("moved %d, victim owned %d — consistent hashing must move exactly the victim's sets", moved, victimOwned)
	}
	if err := p.ServerUp(2); err != nil {
		t.Fatal(err)
	}
	// Rejoin restores the original assignment exactly.
	for _, fs := range fss {
		if p.Owner(fs) != before[fs] {
			t.Fatalf("%s not restored after rejoin", fs)
		}
	}
}

func TestConsistentHashMembershipErrors(t *testing.T) {
	p := NewConsistentHash(1, 8)
	if err := p.Init([]int{0}, nil); err != nil {
		t.Fatal(err)
	}
	if err := p.ServerDown(9); err == nil {
		t.Fatal("unknown ServerDown succeeded")
	}
	if err := p.ServerDown(0); err == nil {
		t.Fatal("removing last server succeeded")
	}
	if err := p.ServerUp(0); err == nil {
		t.Fatal("duplicate ServerUp succeeded")
	}
	if err := NewConsistentHash(1, 8).Init(nil, nil); err == nil {
		t.Fatal("no servers accepted")
	}
}

func TestConsistentHashVnodeDefault(t *testing.T) {
	p := NewConsistentHash(1, 0)
	if err := p.Init([]int{0, 1}, nil); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[p.Owner(fmt.Sprintf("d%d", i))] = true
	}
	if len(seen) != 2 {
		t.Fatalf("defaulted vnodes use %d servers", len(seen))
	}
}

var (
	_ Policy            = (*ConsistentHash)(nil)
	_ MembershipHandler = (*ConsistentHash)(nil)
)
