package placement

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"anufs/internal/core"
	"anufs/internal/trace"
)

var testServers = []int{0, 1, 2, 3, 4}

func fsNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("fs%03d", i)
	}
	return out
}

func TestSimpleRandomCoversAllServers(t *testing.T) {
	p := NewSimpleRandom(1)
	fss := fsNames(500)
	if err := p.Init(testServers, fss); err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, fs := range fss {
		id := p.Owner(fs)
		counts[id]++
	}
	if len(counts) != len(testServers) {
		t.Fatalf("only %d servers used", len(counts))
	}
	for id, c := range counts {
		if c < 50 || c > 150 {
			t.Fatalf("server %d got %d of 500 file sets — not uniform", id, c)
		}
	}
}

func TestSimpleRandomStaticAndDeterministic(t *testing.T) {
	a := NewSimpleRandom(7)
	b := NewSimpleRandom(7)
	fss := fsNames(50)
	if err := a.Init(testServers, fss); err != nil {
		t.Fatal(err)
	}
	if err := b.Init(testServers, fss); err != nil {
		t.Fatal(err)
	}
	if err := a.Reconfigure(120, nil); err != nil {
		t.Fatal(err)
	}
	for _, fs := range fss {
		if a.Owner(fs) != b.Owner(fs) {
			t.Fatalf("same seed disagrees on %s", fs)
		}
	}
	c := NewSimpleRandom(8)
	if err := c.Init(testServers, fss); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for _, fs := range fss {
		if a.Owner(fs) != c.Owner(fs) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds gave identical placement")
	}
}

func TestSimpleRandomNoServers(t *testing.T) {
	if err := NewSimpleRandom(1).Init(nil, fsNames(3)); err == nil {
		t.Fatal("Init with no servers succeeded")
	}
}

func TestRoundRobinExactlyEqualCounts(t *testing.T) {
	p := NewRoundRobin()
	fss := fsNames(100)
	if err := p.Init(testServers, fss); err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, fs := range fss {
		counts[p.Owner(fs)]++
	}
	for id, c := range counts {
		if c != 20 {
			t.Fatalf("server %d got %d, want exactly 20 (round-robin)", id, c)
		}
	}
	if err := p.Reconfigure(0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRoundRobinOrderIndependent(t *testing.T) {
	a, b := NewRoundRobin(), NewRoundRobin()
	fss := fsNames(20)
	rev := make([]string, len(fss))
	for i, fs := range fss {
		rev[len(fss)-1-i] = fs
	}
	if err := a.Init(testServers, fss); err != nil {
		t.Fatal(err)
	}
	if err := b.Init(testServers, rev); err != nil {
		t.Fatal(err)
	}
	for _, fs := range fss {
		if a.Owner(fs) != b.Owner(fs) {
			t.Fatalf("round-robin sensitive to input order at %s", fs)
		}
	}
}

func TestRoundRobinNoServers(t *testing.T) {
	if err := NewRoundRobin().Init(nil, fsNames(3)); err == nil {
		t.Fatal("Init with no servers succeeded")
	}
}

func speedsMap() map[int]float64 {
	return map[int]float64{0: 1, 1: 3, 2: 5, 3: 7, 4: 9}
}

func prescientTrace() *trace.Trace {
	// Two windows of 100 s. Window 0: fsA dominates. Window 1: fsB does.
	return &trace.Trace{Requests: []trace.Request{
		{At: 1, FileSet: "fsA", Work: 90},
		{At: 2, FileSet: "fsB", Work: 10},
		{At: 3, FileSet: "fsC", Work: 10},
		{At: 101, FileSet: "fsA", Work: 10},
		{At: 102, FileSet: "fsB", Work: 90},
		{At: 103, FileSet: "fsC", Work: 10},
	}}
}

func TestPrescientStartsBalanced(t *testing.T) {
	p := NewPrescient(speedsMap(), prescientTrace(), 100)
	if err := p.Init(testServers, []string{"fsA", "fsB", "fsC"}); err != nil {
		t.Fatal(err)
	}
	// The dominant file set must land on the fastest server from t=0.
	if got := p.Owner("fsA"); got != 4 {
		t.Fatalf("dominant file set on server %d, want 4 (fastest)", got)
	}
}

func TestPrescientLooksAhead(t *testing.T) {
	p := NewPrescient(speedsMap(), prescientTrace(), 100)
	if err := p.Init(testServers, []string{"fsA", "fsB", "fsC"}); err != nil {
		t.Fatal(err)
	}
	if err := p.Reconfigure(100, nil); err != nil {
		t.Fatal(err)
	}
	// In window 1 fsB dominates; prescience puts it on the fastest server
	// before the burst happens.
	if got := p.Owner("fsB"); got != 4 {
		t.Fatalf("upcoming dominant file set on server %d, want 4", got)
	}
}

func TestPrescientIdleFileSetsStayPut(t *testing.T) {
	tr := &trace.Trace{Requests: []trace.Request{
		{At: 1, FileSet: "fsA", Work: 10},
		{At: 101, FileSet: "fsA", Work: 10},
	}}
	p := NewPrescient(speedsMap(), tr, 100)
	if err := p.Init(testServers, []string{"fsA", "fsIdle"}); err != nil {
		t.Fatal(err)
	}
	before := p.Owner("fsIdle")
	if err := p.Reconfigure(100, nil); err != nil {
		t.Fatal(err)
	}
	if p.Owner("fsIdle") != before {
		t.Fatal("idle file set moved gratuitously")
	}
}

func TestPrescientMissingSpeed(t *testing.T) {
	p := NewPrescient(map[int]float64{0: 1}, prescientTrace(), 100)
	if err := p.Init([]int{0, 1}, []string{"fsA"}); err == nil {
		t.Fatal("Init without speed for server 1 succeeded")
	}
}

func TestPrescientMembership(t *testing.T) {
	p := NewPrescient(speedsMap(), prescientTrace(), 100)
	if err := p.Init(testServers, []string{"fsA", "fsB", "fsC"}); err != nil {
		t.Fatal(err)
	}
	if err := p.ServerDown(4); err != nil {
		t.Fatal(err)
	}
	for _, fs := range []string{"fsA", "fsB", "fsC"} {
		if p.Owner(fs) == 4 {
			t.Fatalf("%s still owned by downed server", fs)
		}
	}
	if err := p.ServerDown(4); err == nil {
		t.Fatal("double ServerDown succeeded")
	}
	if err := p.ServerUp(4); err != nil {
		t.Fatal(err)
	}
	if err := p.ServerUp(4); err == nil {
		t.Fatal("double ServerUp succeeded")
	}
	if err := p.ServerUp(99); err == nil {
		t.Fatal("ServerUp without speed succeeded")
	}
}

// LPT quality: on random small instances, LPT's makespan is within 2x of
// brute-force optimal (theory: 4/3 for identical machines; heterogeneous
// greedy stays close on small instances).
func TestPrescientLPTNearOptimal(t *testing.T) {
	f := func(seed uint16) bool {
		r := newTestRand(uint64(seed))
		nFS := 3 + int(seed%5)
		weights := map[string]float64{}
		var fss []string
		reqs := []trace.Request{}
		for i := 0; i < nFS; i++ {
			fs := fmt.Sprintf("f%d", i)
			fss = append(fss, fs)
			w := 1 + r.f()*99
			weights[fs] = w
			reqs = append(reqs, trace.Request{At: float64(i) * 0.01, FileSet: fs, Work: w})
		}
		speeds := map[int]float64{0: 1, 1: 2, 2: 4}
		tr := &trace.Trace{Requests: reqs}
		p := NewPrescient(speeds, tr, 100)
		if err := p.Init([]int{0, 1, 2}, fss); err != nil {
			return false
		}
		assign := map[string]int{}
		for _, fs := range fss {
			assign[fs] = p.Owner(fs)
		}
		got := MaxCompletion(assign, weights, speeds)
		best := bruteForceOptimal(fss, weights, []int{0, 1, 2}, speeds)
		return got <= best*2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// bruteForceOptimal exhaustively minimizes makespan (small instances only).
func bruteForceOptimal(fss []string, weights map[string]float64, servers []int, speeds map[int]float64) float64 {
	best := math.Inf(1)
	n := len(fss)
	assign := make([]int, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			load := map[int]float64{}
			for j, fs := range fss {
				load[servers[assign[j]]] += weights[fs]
			}
			var worst float64
			for id, l := range load {
				if c := l / speeds[id]; c > worst {
					worst = c
				}
			}
			if worst < best {
				best = worst
			}
			return
		}
		for s := range servers {
			assign[i] = s
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

// minimal deterministic float source for the quick test above.
type testRand struct{ x uint64 }

func newTestRand(seed uint64) *testRand { return &testRand{x: seed*2654435761 + 1} }
func (t *testRand) f() float64 {
	t.x ^= t.x << 13
	t.x ^= t.x >> 7
	t.x ^= t.x << 17
	return float64(t.x>>11) / (1 << 53)
}

func TestANUPolicyAdapters(t *testing.T) {
	p := NewANU(core.Defaults())
	if err := p.Init(testServers, fsNames(10)); err != nil {
		t.Fatal(err)
	}
	if p.Name() != "anu" {
		t.Fatalf("Name = %q", p.Name())
	}
	id := p.Owner("fs001")
	found := false
	for _, s := range testServers {
		if s == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("Owner returned non-server %d", id)
	}
	reports := []Report{
		{ServerID: 0, MeanLatency: 500, Requests: 10},
		{ServerID: 1, MeanLatency: 10, Requests: 10},
		{ServerID: 2, MeanLatency: 10, Requests: 10},
		{ServerID: 3, MeanLatency: 10, Requests: 10},
		{ServerID: 4, MeanLatency: 10, Requests: 10},
	}
	if err := p.Reconfigure(120, reports); err != nil {
		t.Fatal(err)
	}
	if p.LastUpdate.Aggregate == 0 {
		t.Fatal("LastUpdate not populated")
	}
	if err := p.ServerDown(0); err != nil {
		t.Fatal(err)
	}
	if err := p.ServerUp(0); err != nil {
		t.Fatal(err)
	}
	if p.Mapper().NumServers() != 5 {
		t.Fatalf("NumServers = %d after down+up, want 5", p.Mapper().NumServers())
	}
}

func TestPairwiseANUPolicy(t *testing.T) {
	p := NewPairwiseANU(core.Defaults(), 3)
	if err := p.Init(testServers, nil); err != nil {
		t.Fatal(err)
	}
	if p.Name() != "anu-pairwise" {
		t.Fatalf("Name = %q", p.Name())
	}
	reports := []Report{
		{ServerID: 0, MeanLatency: 500, Requests: 10},
		{ServerID: 1, MeanLatency: 10, Requests: 10},
	}
	if err := p.Reconfigure(120, reports); err != nil {
		t.Fatal(err)
	}
	if err := p.ServerDown(2); err != nil {
		t.Fatal(err)
	}
	if err := p.ServerUp(2); err != nil {
		t.Fatal(err)
	}
	if got := p.Owner("anything"); got < 0 {
		t.Fatalf("Owner = %d", got)
	}
}

// Interface conformance checks.
var (
	_ Policy            = (*SimpleRandom)(nil)
	_ Policy            = (*RoundRobin)(nil)
	_ Policy            = (*Prescient)(nil)
	_ Policy            = (*ANU)(nil)
	_ Policy            = (*PairwiseANU)(nil)
	_ MembershipHandler = (*Prescient)(nil)
	_ MembershipHandler = (*ANU)(nil)
	_ MembershipHandler = (*PairwiseANU)(nil)
)

func TestStaticNonUniformSharesFollowSpeeds(t *testing.T) {
	p := NewStaticNonUniform(core.Defaults(), speedsMap())
	fss := fsNames(2000)
	if err := p.Init(testServers, fss); err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, fs := range fss {
		counts[p.Owner(fs)]++
	}
	// File-set counts must be ordered by speed: the speed-9 server owns the
	// largest region, the speed-1 server the smallest.
	if !(counts[4] > counts[2] && counts[2] > counts[0]) {
		t.Fatalf("counts not speed-ordered: %v", counts)
	}
	want9 := float64(len(fss)) * 9 / 25
	if math.Abs(float64(counts[4])-want9) > 0.2*want9 {
		t.Fatalf("speed-9 server owns %d file sets, want ~%.0f", counts[4], want9)
	}
	// Static: reconfigure must not move anything.
	before := map[string]int{}
	for _, fs := range fss {
		before[fs] = p.Owner(fs)
	}
	if err := p.Reconfigure(120, nil); err != nil {
		t.Fatal(err)
	}
	for _, fs := range fss {
		if p.Owner(fs) != before[fs] {
			t.Fatalf("static policy moved %s", fs)
		}
	}
}

func TestStaticNonUniformMissingSpeed(t *testing.T) {
	p := NewStaticNonUniform(core.Defaults(), map[int]float64{0: 1})
	if err := p.Init([]int{0, 1}, nil); err == nil {
		t.Fatal("missing speed accepted")
	}
}

var _ Policy = (*StaticNonUniform)(nil)
