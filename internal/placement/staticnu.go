package placement

import (
	"fmt"
	"sort"

	"anufs/internal/core"
	"anufs/internal/interval"
)

// StaticNonUniform is a SIEVE-style baseline: the hash-based placement of
// ANU with mapped regions fixed proportional to *known* server capacities,
// and no runtime adaptation. Brinkmann et al.'s SIEVE — the strategy ANU
// is derived from (paper §4) — targets known, non-uniform capacities; this
// policy isolates what ANU's *adaptivity* adds on top of capacity-aware
// hashing: a static capacity-proportional mapping handles server
// heterogeneity but cannot respond to workload heterogeneity (a heavy file
// set landing on a small region still swamps its server) or to workload
// shifts over time.
type StaticNonUniform struct {
	cfg    core.Config
	speeds map[int]float64
	mapper *core.Mapper
}

// NewStaticNonUniform creates the baseline with a-priori capacity
// knowledge (something ANU itself never needs).
func NewStaticNonUniform(cfg core.Config, speeds map[int]float64) *StaticNonUniform {
	return &StaticNonUniform{cfg: cfg, speeds: speeds}
}

// Name implements Policy.
func (p *StaticNonUniform) Name() string { return "static-nonuniform" }

// Init implements Policy: one capacity-proportional rescale, then frozen.
func (p *StaticNonUniform) Init(servers []int, _ []string) error {
	for _, id := range servers {
		if p.speeds[id] <= 0 {
			return fmt.Errorf("placement: static-nonuniform missing speed for server %d", id)
		}
	}
	m, err := core.NewMapper(p.cfg, servers)
	if err != nil {
		return err
	}
	sorted := append([]int(nil), servers...)
	sort.Ints(sorted)
	weights := make([]float64, len(sorted))
	for i, id := range sorted {
		weights[i] = p.speeds[id]
	}
	q := interval.QuantizeShares(weights, interval.Half)
	target := make(map[int]uint64, len(sorted))
	for i, id := range sorted {
		target[id] = q[i]
	}
	if err := m.Rescale(target); err != nil {
		return err
	}
	p.mapper = m
	return nil
}

// Owner implements Policy.
func (p *StaticNonUniform) Owner(fileSet string) int { return p.mapper.Owner(fileSet) }

// Reconfigure implements Policy; the policy never adapts.
func (p *StaticNonUniform) Reconfigure(float64, []Report) error { return nil }
