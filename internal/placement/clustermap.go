package placement

import (
	"encoding/json"
	"fmt"
	"sort"
)

// DaemonInfo describes one anufsd process in a fleet: its numeric ID (the
// same ID space the ANU mapper hashes over), the TCP address clients dial,
// and its relative speed (the heterogeneity knob the paper's ANU shares are
// proportional to).
type DaemonInfo struct {
	ID    int     `json:"id"`
	Addr  string  `json:"addr"`
	Speed float64 `json:"speed"`
}

// ClusterMap is the fleet's routing plane: an epoch-numbered assignment of
// file sets to daemons. The authority publishes it; routers cache it and
// refetch on wrong-owner errors. A map is immutable once published — every
// change produces a new map with a strictly larger epoch, which is what
// makes "stale" a well-defined client state.
type ClusterMap struct {
	Epoch   uint64       `json:"epoch"`
	Daemons []DaemonInfo `json:"daemons"`
	// Assign maps file set → owning daemon ID. File sets absent from the
	// map are unplaced (a router treats them as errors, not guesses).
	Assign map[string]int `json:"assign"`
	// Authority is the ID of the daemon hosting the map authority. After a
	// standby promotion the promoted process publishes itself here, which is
	// how members and routers learn where join/heartbeat/assign now live.
	// Zero is both "daemon 0" and "unset" — pre-replication maps carried no
	// authority field, and daemon 0 hosting the authority is the historical
	// convention either way, so the ambiguity is harmless by construction.
	Authority int `json:"authority,omitempty"`
}

// Encode serializes the map for the wire (`map` op payload). The daemon
// list is sorted by ID first so equal maps encode to equal bytes.
func (m *ClusterMap) Encode() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	cp := *m
	cp.Daemons = append([]DaemonInfo(nil), m.Daemons...)
	sort.Slice(cp.Daemons, func(i, j int) bool { return cp.Daemons[i].ID < cp.Daemons[j].ID })
	return json.Marshal(&cp)
}

// DecodeClusterMap parses and validates an encoded map. Corrupt bytes yield
// an error, never a panic — the payload crosses a trust boundary.
func DecodeClusterMap(b []byte) (*ClusterMap, error) {
	var m ClusterMap
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("placement: decode cluster map: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Validate checks the structural invariants a router relies on: a positive
// epoch, at least one daemon, unique daemon IDs with dialable addresses and
// positive speeds, and every assignment targeting a known daemon.
func (m *ClusterMap) Validate() error {
	if m.Epoch == 0 {
		return fmt.Errorf("placement: cluster map epoch must be > 0")
	}
	if len(m.Daemons) == 0 {
		return fmt.Errorf("placement: cluster map has no daemons")
	}
	seen := make(map[int]bool, len(m.Daemons))
	for _, d := range m.Daemons {
		if seen[d.ID] {
			return fmt.Errorf("placement: duplicate daemon id %d", d.ID)
		}
		seen[d.ID] = true
		if d.Addr == "" {
			return fmt.Errorf("placement: daemon %d has no address", d.ID)
		}
		if !(d.Speed > 0) {
			return fmt.Errorf("placement: daemon %d speed %v must be > 0", d.ID, d.Speed)
		}
	}
	for fs, id := range m.Assign { //anufs:allow simdeterminism validation verdict is order-free; order only picks which of several errors reports first
		if !seen[id] {
			return fmt.Errorf("placement: file set %q assigned to unknown daemon %d", fs, id)
		}
	}
	return nil
}

// AuthorityDaemon returns the daemon hosting the map authority, or ok=false
// when that daemon is not in the map (a promoted standby advertises itself
// in Daemons, so false means a malformed map).
func (m *ClusterMap) AuthorityDaemon() (DaemonInfo, bool) {
	return m.Daemon(m.Authority)
}

// Daemon returns the info for a daemon ID.
func (m *ClusterMap) Daemon(id int) (DaemonInfo, bool) {
	for _, d := range m.Daemons {
		if d.ID == id {
			return d, true
		}
	}
	return DaemonInfo{}, false
}

// Owner returns the daemon that owns a file set, or ok=false when the file
// set is unplaced.
func (m *ClusterMap) Owner(fileSet string) (DaemonInfo, bool) {
	id, ok := m.Assign[fileSet]
	if !ok {
		return DaemonInfo{}, false
	}
	return m.Daemon(id)
}

// FileSetsOf lists the file sets assigned to a daemon, sorted.
func (m *ClusterMap) FileSetsOf(id int) []string {
	var out []string
	for fs, d := range m.Assign { //anufs:allow simdeterminism result is sorted before return
		if d == id {
			out = append(out, fs)
		}
	}
	sort.Strings(out)
	return out
}
