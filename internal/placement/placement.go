// Package placement defines the load-placement policy interface the cluster
// simulator drives, and implements the four policies the paper compares
// (§7): simple randomization, round-robin, dynamic prescient bin-packing,
// and ANU randomization (plus the pairwise decentralized ANU variant from
// §5's future work).
package placement

import (
	"fmt"
	"sort"
	"sync/atomic"

	"anufs/internal/core"
	"anufs/internal/hashfam"
)

// tunerLog, when set, receives every ANU delegate round for structured
// logging (anusim -tuner-log). A package-level sink keeps the Policy
// interface unchanged for the dozens of experiment constructions; it is
// nil in normal runs, so deterministic experiments are unaffected.
var tunerLog atomic.Value // of tunerLogFn

type tunerLogFn func(policy string, now float64, res core.UpdateResult)

// SetTunerLog installs a sink for delegate-round events from every ANU
// policy instance in the process (pass nil to disable). The sink must be
// fast; it runs inline in Reconfigure.
func SetTunerLog(fn func(policy string, now float64, res core.UpdateResult)) {
	tunerLog.Store(tunerLogFn(fn))
}

func logTunerRound(policy string, now float64, res core.UpdateResult) {
	if fn, _ := tunerLog.Load().(tunerLogFn); fn != nil {
		fn(policy, now, res)
	}
}

// Report is a per-server latency measurement for the elapsed interval.
type Report = core.LatencyReport

// Policy decides which server owns each file set. The cluster simulator
// calls Init once, then Owner to route every request, and Reconfigure at
// each measurement-interval boundary. Implementations must be
// deterministic for a fixed construction seed.
type Policy interface {
	// Name identifies the policy in results ("anu", "prescient", …).
	Name() string
	// Init installs the initial configuration for the given servers (sorted
	// ascending) and file sets.
	Init(servers []int, fileSets []string) error
	// Owner returns the server currently responsible for the file set.
	Owner(fileSet string) int
	// Reconfigure lets dynamic policies react to the elapsed interval's
	// latency reports at time now. Static policies ignore it.
	Reconfigure(now float64, reports []Report) error
}

// MembershipHandler is implemented by policies that support servers
// failing, recovering, or being commissioned at runtime.
type MembershipHandler interface {
	ServerDown(id int) error
	ServerUp(id int) error
}

// ---------------------------------------------------------------------------
// Simple randomization: each file set is hashed to a uniformly random
// server, once, statically (§7). No knowledge of heterogeneity.

// SimpleRandom is the paper's "simple randomization" baseline.
type SimpleRandom struct {
	seed  uint64
	fam   *hashfam.Family
	owner map[string]int
}

// NewSimpleRandom creates the baseline with a placement seed.
func NewSimpleRandom(seed uint64) *SimpleRandom {
	return &SimpleRandom{seed: seed}
}

// Name implements Policy.
func (p *SimpleRandom) Name() string { return "simple-random" }

// Init implements Policy.
func (p *SimpleRandom) Init(servers []int, fileSets []string) error {
	if len(servers) == 0 {
		return fmt.Errorf("placement: no servers")
	}
	p.fam = hashfam.New(p.seed, 0)
	p.owner = make(map[string]int, len(fileSets))
	for _, fs := range fileSets {
		p.owner[fs] = servers[p.fam.Fallback(fs, len(servers))]
	}
	return nil
}

// Owner implements Policy.
func (p *SimpleRandom) Owner(fileSet string) int { return p.owner[fileSet] }

// Reconfigure implements Policy; the policy is static.
func (p *SimpleRandom) Reconfigure(float64, []Report) error { return nil }

// ---------------------------------------------------------------------------
// Round-robin: the same number of file sets on every server (§7).

// RoundRobin is the paper's round-robin baseline.
type RoundRobin struct {
	owner map[string]int
}

// NewRoundRobin creates the baseline.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Policy.
func (p *RoundRobin) Name() string { return "round-robin" }

// Init implements Policy.
func (p *RoundRobin) Init(servers []int, fileSets []string) error {
	if len(servers) == 0 {
		return fmt.Errorf("placement: no servers")
	}
	sorted := append([]string(nil), fileSets...)
	sort.Strings(sorted)
	p.owner = make(map[string]int, len(sorted))
	for i, fs := range sorted {
		p.owner[fs] = servers[i%len(servers)]
	}
	return nil
}

// Owner implements Policy.
func (p *RoundRobin) Owner(fileSet string) int { return p.owner[fileSet] }

// Reconfigure implements Policy; the policy is static.
func (p *RoundRobin) Reconfigure(float64, []Report) error { return nil }

// ---------------------------------------------------------------------------
// ANU randomization: the paper's contribution, adapted to the Policy
// interface by wrapping core.Mapper + core.Delegate.

// ANU wraps the core algorithm as a placement policy.
type ANU struct {
	cfg      core.Config
	mapper   *core.Mapper
	delegate *core.Delegate
	// LastUpdate captures the most recent delegate round for observability.
	LastUpdate core.UpdateResult
}

// NewANU creates the ANU policy with the given core configuration.
func NewANU(cfg core.Config) *ANU { return &ANU{cfg: cfg} }

// Name implements Policy.
func (p *ANU) Name() string { return "anu" }

// Init implements Policy. ANU ignores the file-set list: placement is pure
// hashing, which is exactly its scalability property (§5).
func (p *ANU) Init(servers []int, _ []string) error {
	m, err := core.NewMapper(p.cfg, servers)
	if err != nil {
		return err
	}
	p.mapper = m
	p.delegate = core.NewDelegate(p.cfg)
	return nil
}

// Owner implements Policy.
func (p *ANU) Owner(fileSet string) int { return p.mapper.Owner(fileSet) }

// Reconfigure implements Policy: one delegate round.
func (p *ANU) Reconfigure(now float64, reports []Report) error {
	res, err := p.delegate.Update(p.mapper, reports)
	if err != nil {
		return err
	}
	p.LastUpdate = res
	logTunerRound(p.Name(), now, res)
	return nil
}

// ServerDown implements MembershipHandler.
func (p *ANU) ServerDown(id int) error { return p.mapper.RemoveServer(id) }

// ServerUp implements MembershipHandler.
func (p *ANU) ServerUp(id int) error { return p.mapper.AddServer(id, 0) }

// Mapper exposes the underlying mapper for inspection.
func (p *ANU) Mapper() *core.Mapper { return p.mapper }

// ---------------------------------------------------------------------------
// Pairwise ANU: the decentralized variant (§5 future work).

// PairwiseANU tunes by pairwise exchanges instead of a central delegate.
type PairwiseANU struct {
	cfg    core.Config
	seed   uint64
	mapper *core.Mapper
	tuner  *core.PairwiseTuner
	// RoundsPerInterval controls how many pairwise rounds run per
	// reconfiguration; more rounds ≈ faster convergence, more movement.
	RoundsPerInterval int
}

// NewPairwiseANU creates the decentralized policy.
func NewPairwiseANU(cfg core.Config, seed uint64) *PairwiseANU {
	return &PairwiseANU{cfg: cfg, seed: seed, RoundsPerInterval: 2}
}

// Name implements Policy.
func (p *PairwiseANU) Name() string { return "anu-pairwise" }

// Init implements Policy.
func (p *PairwiseANU) Init(servers []int, _ []string) error {
	m, err := core.NewMapper(p.cfg, servers)
	if err != nil {
		return err
	}
	p.mapper = m
	p.tuner = core.NewPairwiseTuner(p.cfg, p.seed)
	return nil
}

// Owner implements Policy.
func (p *PairwiseANU) Owner(fileSet string) int { return p.mapper.Owner(fileSet) }

// Reconfigure implements Policy.
func (p *PairwiseANU) Reconfigure(_ float64, reports []Report) error {
	for i := 0; i < p.RoundsPerInterval; i++ {
		if _, err := p.tuner.Round(p.mapper, reports); err != nil {
			return err
		}
	}
	return nil
}

// ServerDown implements MembershipHandler.
func (p *PairwiseANU) ServerDown(id int) error { return p.mapper.RemoveServer(id) }

// ServerUp implements MembershipHandler.
func (p *PairwiseANU) ServerUp(id int) error { return p.mapper.AddServer(id, 0) }
