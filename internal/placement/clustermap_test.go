package placement

import (
	"strings"
	"testing"
)

func sampleMap() *ClusterMap {
	return &ClusterMap{
		Epoch: 3,
		Daemons: []DaemonInfo{
			{ID: 1, Addr: "127.0.0.1:7001", Speed: 2},
			{ID: 0, Addr: "127.0.0.1:7000", Speed: 1},
		},
		Assign: map[string]int{"vol00": 0, "vol01": 1, "vol02": 1},
	}
}

func TestClusterMapRoundTrip(t *testing.T) {
	m := sampleMap()
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeClusterMap(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 3 || len(got.Daemons) != 2 || len(got.Assign) != 3 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// Encode sorts daemons by ID for deterministic bytes.
	if got.Daemons[0].ID != 0 || got.Daemons[1].ID != 1 {
		t.Fatalf("daemons not sorted: %+v", got.Daemons)
	}
	b2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatalf("encoding not deterministic:\n%s\n%s", b, b2)
	}
}

func TestClusterMapOwnerLookups(t *testing.T) {
	m := sampleMap()
	d, ok := m.Owner("vol01")
	if !ok || d.ID != 1 || d.Addr != "127.0.0.1:7001" {
		t.Fatalf("Owner(vol01) = %+v, %v", d, ok)
	}
	if _, ok := m.Owner("nope"); ok {
		t.Fatal("unplaced file set reported an owner")
	}
	if got := m.FileSetsOf(1); len(got) != 2 || got[0] != "vol01" || got[1] != "vol02" {
		t.Fatalf("FileSetsOf(1) = %v", got)
	}
	if _, ok := m.Daemon(9); ok {
		t.Fatal("unknown daemon resolved")
	}
}

func TestClusterMapValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*ClusterMap)
		want string
	}{
		{"zero epoch", func(m *ClusterMap) { m.Epoch = 0 }, "epoch"},
		{"no daemons", func(m *ClusterMap) { m.Daemons = nil }, "no daemons"},
		{"dup id", func(m *ClusterMap) { m.Daemons[1].ID = 1 }, "duplicate"},
		{"empty addr", func(m *ClusterMap) { m.Daemons[0].Addr = "" }, "no address"},
		{"zero speed", func(m *ClusterMap) { m.Daemons[0].Speed = 0 }, "speed"},
		{"nan speed", func(m *ClusterMap) { m.Daemons[0].Speed = nan() }, "speed"},
		{"unknown owner", func(m *ClusterMap) { m.Assign["vol00"] = 42 }, "unknown daemon"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := sampleMap()
			tc.mut(m)
			err := m.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
			if _, err := m.Encode(); err == nil {
				t.Fatal("Encode accepted an invalid map")
			}
		})
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

func TestDecodeClusterMapRejectsGarbage(t *testing.T) {
	for _, b := range []string{"", "null", "{}", "[1,2]", `{"epoch":1}`, "\x00\x01"} {
		if _, err := DecodeClusterMap([]byte(b)); err == nil {
			t.Fatalf("DecodeClusterMap(%q) accepted garbage", b)
		}
	}
}
