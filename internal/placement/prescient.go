package placement

import (
	"fmt"
	"sort"

	"anufs/internal/trace"
)

// Prescient is the paper's dynamic prescient bin-packing baseline (§7): it
// "knows the processing capabilities of each server and the workload
// characteristics of each file set", and before each interval it "looks
// forward into the trace, identifying the best load balance before the
// workload occurs". It provides the upper bound ANU is compared against.
//
// The permutation that exactly minimizes load skew is NP-hard at 500 file
// sets, so we use the standard LPT (longest processing time first) greedy
// on heterogeneous machines — assign file sets in decreasing workload to
// the server whose completion time (load+w)/speed is minimized. Like the
// paper's prescient, it starts balanced at t = 0 and may permute any file
// set each interval; to avoid gratuitous churn, file sets with zero
// upcoming work keep their current owner.
type Prescient struct {
	speeds map[int]float64
	tr     *trace.Trace
	window float64
	alive  []int
	owner  map[string]int
	all    []string
	// Hysteresis: adopt a fresh packing only when it beats the current
	// assignment's upcoming makespan by this factor. This matches the
	// paper's observed behaviour — "the prescient policy retains the same
	// configuration for the duration of the experiment, because the
	// workload for each file set does not vary with time" (§7) — which a
	// scratch repack every window would not reproduce (Poisson noise would
	// permute ties and thrash). 0 disables repacking after Init; the
	// default 0.8 repacks on real workload shifts only.
	Hysteresis float64
	initDone   bool
}

// NewPrescient creates the baseline. speeds maps server ID to relative
// processing power, tr is the full future trace (prescience), and window is
// the reconfiguration interval in seconds.
func NewPrescient(speeds map[int]float64, tr *trace.Trace, window float64) *Prescient {
	return &Prescient{speeds: speeds, tr: tr, window: window, Hysteresis: 0.8}
}

// Name implements Policy.
func (p *Prescient) Name() string { return "prescient" }

// Init implements Policy: packs for the first window so the system starts
// in a load-balanced state (§7: "having perfect knowledge, the prescient
// algorithm begins in a load-balanced state at time 0").
func (p *Prescient) Init(servers []int, fileSets []string) error {
	if len(servers) == 0 {
		return fmt.Errorf("placement: no servers")
	}
	for _, id := range servers {
		if p.speeds[id] <= 0 {
			return fmt.Errorf("placement: prescient missing speed for server %d", id)
		}
	}
	p.alive = append([]int(nil), servers...)
	sort.Ints(p.alive)
	p.all = append([]string(nil), fileSets...)
	sort.Strings(p.all)
	p.owner = make(map[string]int, len(p.all))
	p.pack(0)
	return nil
}

// Owner implements Policy.
func (p *Prescient) Owner(fileSet string) int { return p.owner[fileSet] }

// Reconfigure implements Policy: repack for the upcoming window.
func (p *Prescient) Reconfigure(now float64, _ []Report) error {
	p.pack(now)
	return nil
}

// ServerDown implements MembershipHandler.
func (p *Prescient) ServerDown(id int) error {
	for i, s := range p.alive {
		if s == id {
			p.alive = append(p.alive[:i], p.alive[i+1:]...)
			// Repack immediately: orphaned file sets need owners. We do not
			// know "now" here; owners of dead servers are fixed lazily by
			// the next pack, so pack over an empty window keeping current
			// owners where possible.
			p.packWeights(map[string]float64{})
			return nil
		}
	}
	return fmt.Errorf("placement: prescient: unknown server %d", id)
}

// ServerUp implements MembershipHandler.
func (p *Prescient) ServerUp(id int) error {
	if p.speeds[id] <= 0 {
		return fmt.Errorf("placement: prescient missing speed for server %d", id)
	}
	for _, s := range p.alive {
		if s == id {
			return fmt.Errorf("placement: prescient: server %d already up", id)
		}
	}
	p.alive = append(p.alive, id)
	sort.Ints(p.alive)
	return nil
}

// pack runs LPT over the work each file set presents in [now, now+window).
// After Init, a fresh packing is adopted only when it improves the upcoming
// makespan by the hysteresis factor (see the field comment).
func (p *Prescient) pack(now float64) {
	weights := p.tr.WorkByFileSetInWindow(now, now+p.window)
	if p.initDone {
		if p.Hysteresis <= 0 {
			p.fixOrphans(weights)
			return
		}
		cur := MaxCompletion(p.owner, weights, p.speeds)
		trial := p.cloneForTrial()
		trial.packWeights(weights)
		if MaxCompletion(trial.owner, weights, p.speeds) >= p.Hysteresis*cur {
			p.fixOrphans(weights)
			return
		}
		p.owner = trial.owner
		return
	}
	p.packWeights(weights)
	p.initDone = true
}

func (p *Prescient) cloneForTrial() *Prescient {
	cp := &Prescient{
		speeds: p.speeds,
		tr:     p.tr,
		window: p.window,
		alive:  p.alive,
		all:    p.all,
		owner:  make(map[string]int, len(p.owner)),
	}
	for fs, id := range p.owner { //anufs:allow simdeterminism map copy; insertion order cannot matter
		cp.owner[fs] = id
	}
	return cp
}

// fixOrphans reassigns file sets whose owner is no longer alive without
// otherwise disturbing the assignment.
func (p *Prescient) fixOrphans(weights map[string]float64) {
	aliveSet := make(map[int]bool, len(p.alive))
	for _, id := range p.alive {
		aliveSet[id] = true
	}
	// Accumulate in the sorted p.all order, not map order: float addition
	// is not associative, and an ULP of difference in load can flip a
	// near-tie placement between runs.
	load := map[int]float64{}
	for _, fs := range p.all {
		if id, ok := p.owner[fs]; ok && aliveSet[id] {
			load[id] += weights[fs]
		}
	}
	for _, fs := range p.all {
		if aliveSet[p.owner[fs]] {
			continue
		}
		best, bestCost := -1, 0.0
		for _, id := range p.alive {
			cost := (load[id] + weights[fs]) / p.speeds[id]
			if best == -1 || cost < bestCost {
				best, bestCost = id, cost
			}
		}
		p.owner[fs] = best
		load[best] += weights[fs]
	}
}

func (p *Prescient) packWeights(weights map[string]float64) {
	type item struct {
		fs string
		w  float64
	}
	items := make([]item, 0, len(weights))
	for _, fs := range p.all {
		if w := weights[fs]; w > 0 {
			items = append(items, item{fs, w})
		}
	}
	// LPT: heaviest first; ties broken by name for determinism.
	sort.Slice(items, func(a, b int) bool {
		if items[a].w != items[b].w {
			return items[a].w > items[b].w
		}
		return items[a].fs < items[b].fs
	})
	load := make(map[int]float64, len(p.alive))
	aliveSet := make(map[int]bool, len(p.alive))
	for _, id := range p.alive {
		aliveSet[id] = true
	}
	for _, it := range items {
		best, bestCost := -1, 0.0
		for _, id := range p.alive {
			cost := (load[id] + it.w) / p.speeds[id]
			if best == -1 || cost < bestCost {
				best, bestCost = id, cost
			}
		}
		p.owner[it.fs] = best
		load[best] += it.w
	}
	// Idle file sets keep their owner unless it is gone (failure), in which
	// case they go to the least-loaded-per-speed live server.
	for _, fs := range p.all {
		if weights[fs] > 0 {
			continue
		}
		if cur, ok := p.owner[fs]; ok && aliveSet[cur] {
			continue
		}
		best, bestCost := -1, 0.0
		for _, id := range p.alive {
			cost := load[id] / p.speeds[id]
			if best == -1 || cost < bestCost {
				best, bestCost = id, cost
			}
		}
		p.owner[fs] = best
	}
}

// MaxCompletion returns max over servers of load/speed for a hypothetical
// weight assignment — exported for tests comparing LPT against optimal.
func MaxCompletion(assign map[string]int, weights map[string]float64, speeds map[int]float64) float64 {
	// Sum in sorted key order: float accumulation in map order is not
	// reproducible across runs.
	sets := make([]string, 0, len(assign))
	for fs := range assign { //anufs:allow simdeterminism collecting keys to sort; order cannot matter
		sets = append(sets, fs)
	}
	sort.Strings(sets)
	load := map[int]float64{}
	for _, fs := range sets {
		load[assign[fs]] += weights[fs]
	}
	var worst float64
	for id, l := range load { //anufs:allow simdeterminism max over servers is order-free

		if c := l / speeds[id]; c > worst {
			worst = c
		}
	}
	return worst
}
