package placement

import "testing"

// FuzzDecodeClusterMap drives the map decoder with arbitrary bytes — the
// payload arrives over the wire from whatever claims to be an authority, so
// corrupt input must produce an error, never a panic, and anything the
// decoder accepts must satisfy the same invariants Validate enforces.
func FuzzDecodeClusterMap(f *testing.F) {
	if b, err := sampleMap().Encode(); err == nil {
		f.Add(b)
	}
	f.Add([]byte(`{"epoch":1,"daemons":[{"id":0,"addr":"a","speed":1}],"assign":{"v":0}}`))
	f.Add([]byte(`{"epoch":0,"daemons":[],"assign":null}`))
	f.Add([]byte(`{"epoch":18446744073709551615,"daemons":[{"id":-1,"addr":"x","speed":1e308}]}`))
	f.Add([]byte(`{"daemons":[{"id":0,"addr":"a","speed":1},{"id":0,"addr":"b","speed":2}]}`))
	f.Add([]byte("not json"))
	f.Add([]byte{})
	f.Add([]byte("\x00\x01\x02"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeClusterMap(data)
		if err != nil {
			return
		}
		// Accepted maps must re-validate and re-encode cleanly.
		if err := m.Validate(); err != nil {
			t.Fatalf("decoded map fails Validate: %v", err)
		}
		b, err := m.Encode()
		if err != nil {
			t.Fatalf("decoded map fails Encode: %v", err)
		}
		m2, err := DecodeClusterMap(b)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m2.Epoch != m.Epoch || len(m2.Daemons) != len(m.Daemons) || len(m2.Assign) != len(m.Assign) {
			t.Fatalf("round trip drifted: %+v vs %+v", m, m2)
		}
	})
}
