package journal

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"anufs/internal/sharedisk"
)

// Log shipping support. A primary's journal is already a self-delimiting,
// CRC-checksummed stream of framed entries, so replication is "read the
// frames back and send them": the Tailer walks sealed and in-progress
// segments from any sequence, capped at the durable boundary; AppendShipped
// and InstallSnapshot are the standby-side mirrors that persist shipped
// entries under the primary's sequence numbering, so a standby's
// DurableSeq IS its replication ack and survives standby restarts via the
// ordinary recovery path.

// Shipped is one journal entry in transit: the primary-assigned sequence
// and the raw entry payload (the bytes inside the frame, CRC-verified on
// read and re-framed plus re-verified on apply).
type Shipped struct {
	Seq     uint64
	Payload []byte
}

// DecodeEntry parses a shipped entry payload; ErrCorrupt on malformation.
func DecodeEntry(payload []byte) (Entry, error) { return decodeEntry(payload) }

// EncodeEntry serializes an entry payload (no frame header) — the inverse
// of DecodeEntry, exported for tests and tooling.
func EncodeEntry(e Entry) []byte { return encodeEntry(e) }

// Apply folds one entry into an image map exactly as recovery replay does:
// idempotent, version-guarded. The standby uses it to keep a warm in-memory
// state alongside its journal.
func Apply(images map[string]sharedisk.Image, e Entry) { applyEntry(images, e) }

// EncodeImages serializes a full store cut for snapshot shipping.
func EncodeImages(images map[string]sharedisk.Image) []byte { return encodeImages(images) }

// DecodeImages parses a shipped store cut; ErrCorrupt on malformation.
func DecodeImages(payload []byte) (map[string]sharedisk.Image, error) {
	return decodeImages(payload)
}

// CaptureCut returns a consistent (sequence, images) pair for snapshot
// shipping: the durable sequence and the store cut are read with commits
// paused, so the cut covers every entry at or below the sequence. (Because
// the store applies before the journal appends, the cut may additionally
// include a not-yet-journaled mutation; replay on the far side is
// version-guarded, so re-shipping that entry later is harmless.)
func (j *Journal) CaptureCut(images func() map[string]sharedisk.Image) (uint64, map[string]sharedisk.Image) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextSeq - 1, images()
}

// segmentFor locates the segment whose entries include seq: the segment on
// disk with the largest first sequence <= seq. ok is false when every such
// segment has been compacted away (the caller needs a snapshot instead).
func (j *Journal) segmentFor(seq uint64) (path string, first uint64, ok bool, err error) {
	segs, err := filepath.Glob(filepath.Join(j.dir, "wal-*.log"))
	if err != nil {
		return "", 0, false, err
	}
	sort.Strings(segs)
	for _, p := range segs {
		f, nameOK := seqFromName(filepath.Base(p), "wal-", ".log")
		if !nameOK || f > seq {
			continue
		}
		if !ok || f > first {
			path, first, ok = p, f, true
		}
	}
	return path, first, ok, nil
}

// Tailer reads the journal's entries back in sequence order, following
// segment rotations and stopping at the durable boundary. One Tailer is a
// single-goroutine cursor; the shipper owns one per standby connection.
//
// A Tailer keeps its current segment file open, so compaction deleting the
// file mid-read is harmless (the inode lives until Close); only entries it
// has not reached yet can be compacted out from under it, which Next
// reports as snapshotNeeded.
type Tailer struct {
	j    *Journal
	next uint64 // sequence of the next entry to deliver

	f        *os.File
	segFirst uint64
	off      int64
}

// NewTailer starts a cursor that will deliver entries from sequence `from`
// (clamped to 1) onward.
func (j *Journal) NewTailer(from uint64) *Tailer {
	if from == 0 {
		from = 1
	}
	return &Tailer{j: j, next: from}
}

// NextSeq reports the sequence the tailer will deliver next.
func (t *Tailer) NextSeq() uint64 { return t.next }

// Close releases the open segment file. The Tailer is reusable after Close
// (the next Next reopens).
func (t *Tailer) Close() {
	if t.f != nil {
		t.f.Close()
		t.f = nil
	}
}

// Next returns the next run of durable entries, bounded by maxEntries and
// maxBytes (both must be positive). An empty result with snapshotNeeded
// false means the tailer is caught up — wait on the journal's CommitSignal.
// snapshotNeeded reports that the next entry has been compacted into a
// snapshot; the caller must ship a full cut (CaptureCut) and restart the
// tailer past it.
func (t *Tailer) Next(maxEntries int, maxBytes int64) (ents []Shipped, snapshotNeeded bool, err error) {
	durable := t.j.DurableSeq()
	var bytes int64
	for t.next <= durable && len(ents) < maxEntries && bytes < maxBytes {
		if t.f == nil {
			snap, err := t.open(t.next)
			if err != nil {
				return ents, false, err
			}
			if snap {
				// Deliver what was already read; the caller sees
				// snapshotNeeded once it drains to this point.
				return ents, len(ents) == 0, nil
			}
		}
		payload, n, ok, err := readFrameAt(t.f, t.off)
		if err != nil {
			return ents, false, fmt.Errorf("journal: tail %s@%d: %w", t.f.Name(), t.off, err)
		}
		if !ok {
			// No complete frame yet t.next is durable: the segment was
			// rotated and the entry lives in a newer one. Reopen there; if
			// the reopened segment is the same file, the directory is
			// inconsistent and retrying would spin.
			prev := t.segFirst
			t.Close()
			if snap, err := t.open(t.next); err != nil || snap {
				return ents, snap && len(ents) == 0, err
			}
			if t.segFirst == prev {
				t.Close()
				return ents, false, fmt.Errorf("journal: durable entry %d unreadable in segment %016x", t.next, prev)
			}
			continue
		}
		ents = append(ents, Shipped{Seq: t.next, Payload: payload})
		bytes += int64(n)
		t.off += int64(n)
		t.next++
	}
	return ents, false, nil
}

// open positions the tailer at seq: locate the covering segment, verify its
// header, and skip frames below seq.
func (t *Tailer) open(seq uint64) (snapshotNeeded bool, err error) {
	path, first, ok, err := t.j.segmentFor(seq)
	if err != nil {
		return false, err
	}
	if !ok {
		return true, nil
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return true, nil // compacted between glob and open
		}
		return false, err
	}
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(f, hdr); err != nil {
		f.Close()
		return false, fmt.Errorf("journal: tail %s: short header: %w", path, err)
	}
	hseq, hok := parseHeader(hdr, segMagic)
	if !hok || hseq != first {
		f.Close()
		return false, fmt.Errorf("journal: tail %s: bad header", path)
	}
	off := int64(headerLen)
	for cur := first; cur < seq; cur++ {
		_, n, ok, err := readFrameAt(f, off)
		if err != nil || !ok {
			f.Close()
			if err == nil {
				err = fmt.Errorf("journal: entry %d missing while seeking %d in %s", cur, seq, path)
			}
			return false, err
		}
		off += int64(n)
	}
	t.f, t.segFirst, t.off = f, first, off
	return false, nil
}

// readFrameAt reads one complete frame at off. ok=false with a nil error
// means the frame is not (fully) there — a clean end for the reader. A CRC
// mismatch on a complete frame is real corruption and returns an error,
// because tailers only read below the durable boundary where torn writes
// cannot exist.
func readFrameAt(f *os.File, off int64) (payload []byte, n int, ok bool, err error) {
	var hdr [frameHeaderLen]byte
	if _, rerr := f.ReadAt(hdr[:], off); rerr != nil {
		return nil, 0, false, nil // short/EOF: nothing complete here
	}
	ln := binary.LittleEndian.Uint32(hdr[0:4])
	if ln > maxFrameLen {
		return nil, 0, false, fmt.Errorf("%w: frame length %d", ErrCorrupt, ln)
	}
	payload = make([]byte, ln)
	if _, rerr := f.ReadAt(payload, off+frameHeaderLen); rerr != nil {
		return nil, 0, false, nil
	}
	full := append(hdr[:], payload...)
	got, n2, fok := nextFrame(full)
	if !fok {
		return nil, 0, false, fmt.Errorf("%w: bad frame CRC below durable boundary", ErrCorrupt)
	}
	return got, n2, true, nil
}

// AppendShipped persists replicated entries on a standby, preserving the
// primary's sequence numbering: entries at or below the standby's durable
// sequence are skipped (resume overlap), the rest must be contiguous from
// it. The batch is written with one write and one fsync, exactly like a
// group commit. Standby-side API only — a journal must not mix AppendShipped
// with local Log* appends, or the sequence spaces would interleave.
func (j *Journal) AppendShipped(ents []Shipped) error {
	for _, e := range ents {
		if _, err := decodeEntry(e.Payload); err != nil {
			return fmt.Errorf("journal: shipped entry %d: %w", e.Seq, err)
		}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil || j.closed {
		return ErrClosed
	}
	var buf []byte
	count := uint64(0)
	for _, e := range ents {
		if e.Seq < j.nextSeq+count {
			continue // already durable here
		}
		if e.Seq != j.nextSeq+count {
			return fmt.Errorf("journal: shipped sequence gap: have %d, got %d", j.nextSeq+count-1, e.Seq)
		}
		buf = appendFrame(buf, e.Payload)
		count++
	}
	if count == 0 {
		return nil
	}
	if j.segSize >= j.opts.SegmentBytes && j.segSize > headerLen {
		if err := j.openSegmentLocked(); err != nil {
			return err
		}
	}
	if _, err := j.f.Write(buf); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.segSize += int64(len(buf))
	j.nextSeq += count
	j.signalCommitLocked()
	j.counters.Add(CtrRecords, int64(count))
	j.counters.Add(CtrBytes, int64(len(buf)))
	j.counters.Add(CtrFsyncs, 1)
	j.counters.Add(CtrBatches, 1)
	j.counters.Max(CtrMaxBatch, int64(count))
	return nil
}

// InstallSnapshot adopts a full shipped cut at seq on a standby whose own
// log has fallen behind the primary's compaction horizon: the snapshot file
// is written (atomic rename is the commit point), the sequence space jumps
// to seq+1 with a fresh active segment, and superseded segments/snapshots
// are compacted away. A no-op when the standby already has everything the
// cut covers. Crash-safe at every step: until the rename the old state
// recovers; after it, recovery adopts the snapshot and ignores older
// segments' entries.
func (j *Journal) InstallSnapshot(seq uint64, images map[string]sharedisk.Image) error {
	j.snapMu.Lock()
	defer j.snapMu.Unlock()

	j.mu.Lock()
	if j.f == nil || j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	if seq < j.nextSeq {
		j.mu.Unlock()
		return nil
	}
	j.mu.Unlock()

	if err := writeSnapshot(j.dir, seq, images); err != nil {
		return err
	}
	j.counters.Add(CtrSnapshots, 1)

	j.mu.Lock()
	j.nextSeq = seq + 1
	if err := j.openSegmentLocked(); err != nil {
		j.mu.Unlock()
		return err
	}
	activeName := j.f.Name()
	j.signalCommitLocked()
	j.mu.Unlock()
	return j.compact(seq, activeName)
}
