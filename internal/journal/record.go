package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"anufs/internal/sharedisk"
)

// timeFromUnixNano rebuilds a time.Time from its encoded nanoseconds.
func timeFromUnixNano(ns int64) time.Time { return time.Unix(0, ns) }

// On-disk framing. Every journal entry is one frame:
//
//	+----------------+----------------+====================+
//	| payload length | CRC32(payload) |      payload       |
//	|   uint32 LE    |   uint32 LE    |  length bytes      |
//	+----------------+----------------+====================+
//
// payload = [1 byte kind][kind-specific body]. A torn write (crash mid
// append) shows up as a frame whose length runs past EOF or whose CRC does
// not match; recovery truncates the log at the first such frame.
const (
	frameHeaderLen = 8
	// maxFrameLen bounds a single entry. Anything larger is treated as
	// corruption rather than an allocation request.
	maxFrameLen = 64 << 20
)

// ErrCorrupt marks a frame or payload that does not decode; recovery treats
// it as the end of the usable log.
var ErrCorrupt = errors.New("journal: corrupt record")

// EntryKind discriminates journal entries.
type EntryKind uint8

const (
	// KindCreateFileSet records the birth of an empty file set.
	KindCreateFileSet EntryKind = 1
	// KindFlush records a flushed image (post-flush version included).
	KindFlush EntryKind = 2
	// KindDrop records the removal of a file set from this journal's shared
	// disk — written when a fleet handoff donates the file set to another
	// daemon, so replay does not resurrect the fenced copy.
	KindDrop EntryKind = 3
)

// Entry is one decoded journal record.
type Entry struct {
	Kind    EntryKind
	FileSet string
	// Image is the flushed image for KindFlush entries.
	Image sharedisk.Image
}

// appendFrame encodes the payload as a length+CRC frame onto dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// nextFrame extracts the first frame's payload from data. ok is false when
// data starts with a torn or corrupt frame (including a clean EOF: zero
// remaining bytes is simply n=0, ok=false).
func nextFrame(data []byte) (payload []byte, n int, ok bool) {
	if len(data) < frameHeaderLen {
		return nil, 0, false
	}
	ln := binary.LittleEndian.Uint32(data[0:4])
	sum := binary.LittleEndian.Uint32(data[4:8])
	if ln > maxFrameLen || int(ln) > len(data)-frameHeaderLen {
		return nil, 0, false
	}
	payload = data[frameHeaderLen : frameHeaderLen+int(ln)]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, false
	}
	return payload, frameHeaderLen + int(ln), true
}

// appendEntry serializes an entry payload (no frame header) onto dst.
func appendEntry(dst []byte, e Entry) []byte {
	dst = append(dst, byte(e.Kind))
	dst = appendString(dst, e.FileSet)
	if e.Kind == KindFlush {
		dst = appendImage(dst, e.Image)
	}
	return dst
}

// encodeEntry serializes an entry payload into a fresh buffer.
func encodeEntry(e Entry) []byte { return appendEntry(nil, e) }

// appendEntryFrame appends e as one complete framed record onto dst: the
// 8-byte header slot is reserved up front, the payload is encoded in
// place, and length+CRC are backfilled — one pass, no intermediate
// payload buffer, so a pooled dst makes the append path allocation-free.
//
//anufs:hotpath
func appendEntryFrame(dst []byte, e Entry) []byte {
	hdrOff := len(dst)
	var hdr [frameHeaderLen]byte
	dst = append(dst, hdr[:]...)
	dst = appendEntry(dst, e)
	payload := dst[hdrOff+frameHeaderLen:]
	binary.LittleEndian.PutUint32(dst[hdrOff:hdrOff+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[hdrOff+4:hdrOff+8], crc32.ChecksumIEEE(payload))
	return dst
}

// decodeEntry parses an entry payload. It never panics: any malformed input
// yields ErrCorrupt.
func decodeEntry(payload []byte) (Entry, error) {
	c := &cursor{b: payload}
	e := Entry{Kind: EntryKind(c.u8())}
	e.FileSet = c.str()
	switch e.Kind {
	case KindCreateFileSet, KindDrop:
	case KindFlush:
		e.Image = c.image()
	default:
		return Entry{}, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, e.Kind)
	}
	if c.err != nil {
		return Entry{}, c.err
	}
	if c.off != len(c.b) {
		return Entry{}, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(c.b)-c.off)
	}
	return e, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendImage serializes an image: version, record count, then each record
// as path, size, mode, mod time (zero flagged explicitly — the zero
// time.Time has no representable UnixNano), owner.
func appendImage(dst []byte, im sharedisk.Image) []byte {
	dst = binary.AppendUvarint(dst, im.Version)
	dst = binary.AppendUvarint(dst, uint64(len(im.Records)))
	for path, rec := range im.Records {
		dst = appendString(dst, path)
		dst = binary.AppendVarint(dst, rec.Size)
		dst = binary.AppendUvarint(dst, uint64(rec.Mode))
		if rec.ModTime.IsZero() {
			dst = append(dst, 0)
		} else {
			dst = append(dst, 1)
			dst = binary.AppendVarint(dst, rec.ModTime.UnixNano())
		}
		dst = appendString(dst, rec.Owner)
	}
	return dst
}

// cursor is a bounds-checked little decoder: the first failure latches in
// err and every subsequent read returns zero values.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail() {
	if c.err == nil {
		c.err = ErrCorrupt
	}
}

func (c *cursor) u8() uint8 {
	if c.err != nil || c.off >= len(c.b) {
		c.fail()
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.fail()
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) varint() int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		c.fail()
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) str() string {
	ln := c.uvarint()
	if c.err != nil || ln > uint64(len(c.b)-c.off) {
		c.fail()
		return ""
	}
	s := string(c.b[c.off : c.off+int(ln)])
	c.off += int(ln)
	return s
}

func (c *cursor) image() sharedisk.Image {
	im := sharedisk.Image{Version: c.uvarint()}
	n := c.uvarint()
	// Each record needs at least a few bytes; reject counts that cannot fit
	// before allocating.
	if c.err != nil || n > uint64(len(c.b)-c.off) {
		c.fail()
		return sharedisk.Image{}
	}
	im.Records = make(map[string]sharedisk.Record, n)
	for i := uint64(0); i < n && c.err == nil; i++ {
		path := c.str()
		var rec sharedisk.Record
		rec.Size = c.varint()
		rec.Mode = uint32(c.uvarint())
		if c.u8() != 0 {
			rec.ModTime = timeFromUnixNano(c.varint())
		}
		rec.Owner = c.str()
		im.Records[path] = rec
	}
	return im
}
