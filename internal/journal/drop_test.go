package journal

import (
	"testing"

	"anufs/internal/sharedisk"
)

// TestDropSurvivesRestart proves the fleet handoff fence is durable: after
// a donor journals a drop, recovery must not resurrect the file set even
// though its create and flush entries are still in the log.
func TestDropSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	j, _, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, fs := range []string{"vol00", "vol01"} {
		if err := j.LogCreateFileSet(fs); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.LogFlush("vol00", img(2, "/a")); err != nil {
		t.Fatal(err)
	}
	if err := j.LogDrop("vol00"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, st, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireImagesEqual(t, st, map[string]sharedisk.Image{
		"vol01": img(1),
	})
}

// TestDropThenRecreate proves replay ordering: a file set dropped and then
// re-adopted (re-created via a later flush) recovers to the later state.
func TestDropThenRecreate(t *testing.T) {
	dir := t.TempDir()
	j, _, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.LogCreateFileSet("vol00"); err != nil {
		t.Fatal(err)
	}
	if err := j.LogFlush("vol00", img(5, "/old")); err != nil {
		t.Fatal(err)
	}
	if err := j.LogDrop("vol00"); err != nil {
		t.Fatal(err)
	}
	// The file set comes back (adopted from another daemon) at a lower
	// version than the dropped copy — replay must install it anyway, since
	// the drop erased the old version.
	if err := j.LogFlush("vol00", img(3, "/new")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, st, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireImagesEqual(t, st, map[string]sharedisk.Image{
		"vol00": img(3, "/new"),
	})
}

func TestDropEntryRoundTrip(t *testing.T) {
	e := Entry{Kind: KindDrop, FileSet: "vol07"}
	got, err := decodeEntry(encodeEntry(e))
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindDrop || got.FileSet != "vol07" {
		t.Fatalf("round trip = %+v", got)
	}
}
