package journal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"anufs/internal/sharedisk"
)

// appendEntries journals each entry through the public Log* API.
func appendEntries(t *testing.T, j *Journal, entries []Entry) {
	t.Helper()
	for _, e := range entries {
		var err error
		if e.Kind == KindCreateFileSet {
			err = j.LogCreateFileSet(e.FileSet)
		} else {
			err = j.LogFlush(e.FileSet, e.Image)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

// shipAll drains a tailer completely.
func shipAll(t *testing.T, tl *Tailer) []Shipped {
	t.Helper()
	var out []Shipped
	for {
		ents, snap, err := tl.Next(4, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if snap {
			t.Fatal("unexpected snapshotNeeded")
		}
		if len(ents) == 0 {
			return out
		}
		out = append(out, ents...)
	}
}

func TestTailerStreamsLiveAppends(t *testing.T) {
	dir := t.TempDir()
	j, _, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	first := []Entry{
		{Kind: KindCreateFileSet, FileSet: "vol00"},
		{Kind: KindFlush, FileSet: "vol00", Image: img(2, "/a")},
		{Kind: KindFlush, FileSet: "vol00", Image: img(3, "/a", "/b")},
	}
	appendEntries(t, j, first)

	tl := j.NewTailer(1)
	defer tl.Close()
	got := shipAll(t, tl)
	if len(got) != len(first) {
		t.Fatalf("tailed %d entries, want %d", len(got), len(first))
	}
	for i, s := range got {
		if s.Seq != uint64(i+1) {
			t.Fatalf("entry %d has seq %d", i, s.Seq)
		}
		e, err := DecodeEntry(s.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(e, first[i]) {
			t.Fatalf("entry %d decoded %+v, want %+v", i, e, first[i])
		}
	}

	// The commit signal wakes a caught-up tailer: capture it before the
	// append, then require it to fire and the tailer to see the new entry.
	sig := j.CommitSignal()
	if d := j.DurableSeq(); d != 3 {
		t.Fatalf("DurableSeq = %d, want 3", d)
	}
	appendEntries(t, j, []Entry{{Kind: KindFlush, FileSet: "vol00", Image: img(4, "/c")}})
	select {
	case <-sig:
	case <-time.After(5 * time.Second):
		t.Fatal("commit signal never fired")
	}
	more := shipAll(t, tl)
	if len(more) != 1 || more[0].Seq != 4 {
		t.Fatalf("after signal tailed %+v, want one entry at seq 4", more)
	}
}

func TestTailerWalksRotatedSegments(t *testing.T) {
	dir := t.TempDir()
	// One entry per segment: rotation happens before every batch after the
	// first entry lands.
	j, _, _, err := Open(dir, Options{SegmentBytes: headerLen + 1})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	entries := []Entry{
		{Kind: KindCreateFileSet, FileSet: "vol00"},
		{Kind: KindCreateFileSet, FileSet: "vol01"},
		{Kind: KindFlush, FileSet: "vol00", Image: img(2, "/a")},
		{Kind: KindFlush, FileSet: "vol01", Image: img(2, "/x")},
		{Kind: KindFlush, FileSet: "vol00", Image: img(3, "/a", "/b")},
	}
	appendEntries(t, j, entries)
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 2 {
		t.Fatalf("want multiple segments, got %v", segs)
	}
	// Start mid-stream to exercise the seek path too.
	tl := j.NewTailer(2)
	defer tl.Close()
	got := shipAll(t, tl)
	if len(got) != len(entries)-1 {
		t.Fatalf("tailed %d entries from seq 2, want %d", len(got), len(entries)-1)
	}
	for i, s := range got {
		if s.Seq != uint64(i+2) {
			t.Fatalf("entry %d has seq %d, want %d", i, s.Seq, i+2)
		}
	}
}

func TestAppendShippedMirrorsPrimary(t *testing.T) {
	pdir, sdir := t.TempDir(), t.TempDir()
	p, _, _, err := Open(pdir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	entries := []Entry{
		{Kind: KindCreateFileSet, FileSet: "vol00"},
		{Kind: KindFlush, FileSet: "vol00", Image: img(2, "/a")},
		{Kind: KindCreateFileSet, FileSet: "vol01"},
		{Kind: KindFlush, FileSet: "vol01", Image: img(2, "/x", "/y")},
	}
	appendEntries(t, p, entries)
	tl := p.NewTailer(1)
	shipped := shipAll(t, tl)
	tl.Close()

	s, _, _, err := Open(sdir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Deliver in two batches with an overlap: the duplicate prefix must be
	// skipped, and re-delivering an already-applied batch must be a no-op.
	if err := s.AppendShipped(shipped[:3]); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendShipped(shipped[1:]); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendShipped(shipped); err != nil {
		t.Fatal(err)
	}
	if got := s.DurableSeq(); got != uint64(len(entries)) {
		t.Fatalf("standby DurableSeq = %d, want %d", got, len(entries))
	}
	// A gap must be rejected, not silently applied.
	gap := Shipped{Seq: uint64(len(entries)) + 2, Payload: EncodeEntry(Entry{Kind: KindCreateFileSet, FileSet: "volXX"})}
	if err := s.AppendShipped([]Shipped{gap}); err == nil {
		t.Fatal("sequence gap accepted")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// The standby's journal recovers to exactly the primary's state.
	want := expectedPrefix(entries, len(entries))
	st, info, err := Recover(sdir)
	if err != nil {
		t.Fatal(err)
	}
	if info.LastSeq != uint64(len(entries)) {
		t.Fatalf("standby recovered LastSeq %d, want %d", info.LastSeq, len(entries))
	}
	requireImagesEqual(t, st, want)
}

func TestTailerSnapshotFallbackAndInstall(t *testing.T) {
	pdir, sdir := t.TempDir(), t.TempDir()
	p, _, _, err := Open(pdir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	images := map[string]sharedisk.Image{}
	apply := func(es []Entry) {
		for _, e := range es {
			Apply(images, e)
		}
	}
	head := []Entry{
		{Kind: KindCreateFileSet, FileSet: "vol00"},
		{Kind: KindFlush, FileSet: "vol00", Image: img(2, "/a")},
	}
	appendEntries(t, p, head)
	apply(head)
	// Compact: entries 1..2 now live only in the snapshot.
	if err := p.Snapshot(func() map[string]sharedisk.Image { return images }); err != nil {
		t.Fatal(err)
	}
	tail := []Entry{
		{Kind: KindCreateFileSet, FileSet: "vol01"},
		{Kind: KindFlush, FileSet: "vol01", Image: img(2, "/x")},
	}
	appendEntries(t, p, tail)
	apply(tail)

	// A tailer starting from 1 cannot stream the compacted prefix.
	tl := p.NewTailer(1)
	ents, snap, err := tl.Next(16, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !snap || len(ents) != 0 {
		t.Fatalf("Next = (%d entries, snap=%v), want snapshotNeeded", len(ents), snap)
	}
	tl.Close()

	// Ship a full cut instead, then stream the rest from past it.
	cutSeq, cut := p.CaptureCut(func() map[string]sharedisk.Image { return images })
	if cutSeq != 4 {
		t.Fatalf("CaptureCut seq = %d, want 4", cutSeq)
	}
	decoded, err := DecodeImages(EncodeImages(cut))
	if err != nil {
		t.Fatal(err)
	}
	s, _, _, err := Open(sdir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InstallSnapshot(cutSeq, decoded); err != nil {
		t.Fatal(err)
	}
	if got := s.DurableSeq(); got != cutSeq {
		t.Fatalf("standby DurableSeq after install = %d, want %d", got, cutSeq)
	}
	// Re-installing an old cut is a no-op.
	if err := s.InstallSnapshot(cutSeq, decoded); err != nil {
		t.Fatal(err)
	}

	more := []Entry{{Kind: KindFlush, FileSet: "vol00", Image: img(3, "/a", "/b")}}
	appendEntries(t, p, more)
	apply(more)
	tl2 := p.NewTailer(cutSeq + 1)
	shipped := shipAll(t, tl2)
	tl2.Close()
	if err := s.AppendShipped(shipped); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st, _, err := Recover(sdir)
	if err != nil {
		t.Fatal(err)
	}
	requireImagesEqual(t, st, images)
}

func TestAckGateBlocksAppendAck(t *testing.T) {
	dir := t.TempDir()
	j, _, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var gateSeqs []uint64
	j.SetAckGate(func(seq uint64) error {
		gateSeqs = append(gateSeqs, seq)
		return nil
	})
	appendEntries(t, j, []Entry{
		{Kind: KindCreateFileSet, FileSet: "vol00"},
		{Kind: KindFlush, FileSet: "vol00", Image: img(2, "/a")},
	})
	if !reflect.DeepEqual(gateSeqs, []uint64{1, 2}) {
		t.Fatalf("gate saw %v, want [1 2]", gateSeqs)
	}
	gateErr := errors.New("standby unreachable")
	j.SetAckGate(func(uint64) error { return gateErr })
	if err := j.LogCreateFileSet("vol01"); !errors.Is(err, gateErr) {
		t.Fatalf("append with failing gate returned %v", err)
	}
	// The entry is still locally durable even though the gate failed.
	if got := j.DurableSeq(); got != 3 {
		t.Fatalf("DurableSeq = %d, want 3", got)
	}
}

// copyDir clones a journal directory so cleanup prefixes can be applied
// destructively.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	files, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		data, err := os.ReadFile(filepath.Join(src, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, f.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestTornTailCleanupCrashInjection is the satellite crash case: Open's
// torn-tail cleanup is a sequence of filesystem mutations, and a crash
// after ANY prefix of them must leave a directory that recovers to the
// same durable prefix. The historical ordering (cut the torn segment
// before deleting stranded ones) failed this at prefix 1: the cut looked
// clean, so the next recovery replayed the stranded segments and
// resurrected discarded entries.
func TestTornTailCleanupCrashInjection(t *testing.T) {
	entries := []Entry{
		{Kind: KindCreateFileSet, FileSet: "vol00"},
		{Kind: KindFlush, FileSet: "vol00", Image: img(2, "/a")},
		{Kind: KindCreateFileSet, FileSet: "vol01"},
		{Kind: KindFlush, FileSet: "vol01", Image: img(2, "/x")},
		{Kind: KindFlush, FileSet: "vol00", Image: img(3, "/a", "/b")},
		{Kind: KindFlush, FileSet: "vol01", Image: img(3, "/x", "/y")},
	}
	for _, headerless := range []bool{false, true} {
		name := "torn-frame"
		if headerless {
			name = "headerless-segment"
		}
		t.Run(name, func(t *testing.T) {
			// One entry per segment, then damage segment 3 so segments 4..6
			// are stranded past the tear.
			dir := t.TempDir()
			j, _, _, err := Open(dir, Options{SegmentBytes: headerLen + 1})
			if err != nil {
				t.Fatal(err)
			}
			appendEntries(t, j, entries)
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
			if err != nil || len(segs) != len(entries) {
				t.Fatalf("want %d one-entry segments, got %v (%v)", len(entries), segs, err)
			}
			victim := segs[2]
			data, err := os.ReadFile(victim)
			if err != nil {
				t.Fatal(err)
			}
			pos := len(data) - 1 // inside the entry's payload
			if headerless {
				pos = 2 // inside the segment magic
			}
			data[pos] ^= 0x5a
			if err := os.WriteFile(victim, data, 0o644); err != nil {
				t.Fatal(err)
			}

			_, info, err := replayDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if !info.Truncated || len(info.strandedSegments) != 3 {
				t.Fatalf("setup did not strand 3 segments: %+v", info)
			}
			ops := tornTailCleanupOps(info)
			want := expectedPrefix(entries, 2)
			for k := 0; k <= len(ops); k++ {
				crash := copyDir(t, dir)
				reOps := tornTailCleanupOps(remapInfo(info, crash))
				for i := 0; i < k; i++ {
					if err := reOps[i].apply(); err != nil {
						t.Fatalf("cleanup step %d: %v", i, err)
					}
				}
				st, _, err := Recover(crash)
				if err != nil {
					t.Fatalf("crash after %d/%d cleanup steps: Recover: %v", k, len(ops), err)
				}
				if got := st.Images(); !reflect.DeepEqual(got, want) {
					t.Fatalf("crash after %d/%d cleanup steps resurrected or lost entries:\n got %+v\nwant %+v",
						k, len(ops), got, want)
				}
			}
			// And the fully-cleaned directory no longer reports a tear.
			clean := copyDir(t, dir)
			for _, op := range tornTailCleanupOps(remapInfo(info, clean)) {
				if err := op.apply(); err != nil {
					t.Fatal(err)
				}
			}
			if _, info2, err := Recover(clean); err != nil || info2.Truncated {
				t.Fatalf("directory still torn after full cleanup: %+v, %v", info2, err)
			}
		})
	}
}

// remapInfo rebases a RecoverInfo's paths into another directory.
func remapInfo(info RecoverInfo, to string) RecoverInfo {
	out := info
	out.TruncatedSegment = filepath.Join(to, filepath.Base(info.TruncatedSegment))
	out.strandedSegments = nil
	for _, p := range info.strandedSegments {
		out.strandedSegments = append(out.strandedSegments, filepath.Join(to, filepath.Base(p)))
	}
	return out
}
