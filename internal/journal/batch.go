package journal

import (
	"time"

	"anufs/internal/obs"
)

// Group commit. One committer goroutine owns the write path: it pulls the
// first queued append, gathers whatever else is concurrently queued (plus,
// with FsyncInterval > 0, whatever arrives within the gather window),
// writes the whole batch with one write syscall and one fsync, and then
// releases every waiter. Appends that arrive while an fsync is in flight
// simply ride the next batch — that is where the amortization comes from
// under concurrent flush load (cf. IOPathTune's adaptive I/O-path batching:
// sync cost per record falls roughly linearly in batch size).

// run is the committer loop.
func (j *Journal) run() {
	defer close(j.done)
	for {
		var first *appendReq
		select {
		case first = <-j.appendCh:
		case <-j.quit:
			j.finalDrain()
			return
		}
		j.commit(j.gather(first))
	}
}

// gather collects the batch that will share first's fsync.
func (j *Journal) gather(first *appendReq) []*appendReq {
	batch := []*appendReq{first}
	if j.opts.NoGroupCommit {
		return batch
	}
	if j.opts.FsyncInterval > 0 {
		t := time.NewTimer(j.opts.FsyncInterval)
		defer t.Stop()
		for {
			select {
			case r := <-j.appendCh:
				batch = append(batch, r)
			case <-t.C:
				return batch
			case <-j.quit:
				return batch
			}
		}
	}
	for {
		select {
		case r := <-j.appendCh:
			batch = append(batch, r)
		default:
			return batch
		}
	}
}

// commit writes and fsyncs one batch, then wakes its waiters. With obs
// wired, every record's group-commit wait (enqueue → durable) lands in a
// histogram, and records carrying a request trace emit wait spans — the
// per-request view of the amortization trade-off.
func (j *Journal) commit(batch []*appendReq) {
	err := j.writeBatch(batch)
	done := time.Now()
	if j.obs != nil {
		errStr := ""
		if err != nil {
			errStr = err.Error()
		}
		for _, r := range batch {
			wait := done.Sub(r.enq)
			j.histCommitWait.Observe(wait)
			if r.trace != 0 {
				j.obs.Spans.Add(obs.Span{
					Trace: r.trace, Name: "journal-commit-wait", Server: -1,
					Start: r.enq, Dur: wait, Err: errStr,
				})
			}
		}
	}
	for _, r := range batch {
		r.done <- err
	}
}

// finalDrain commits everything still queued at Close time, so a caller
// blocked in append gets a durable ack rather than ErrClosed.
func (j *Journal) finalDrain() {
	for {
		select {
		case r := <-j.appendCh:
			j.commit(j.gather(r))
		default:
			return
		}
	}
}

// writeBatch appends the batch's frames to the active segment with a single
// write and a single fsync (NoGroupCommit batches are single records, so
// that degenerates to one fsync per record), rotating first if the segment
// is over its size threshold.
func (j *Journal) writeBatch(batch []*appendReq) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return ErrClosed
	}
	// Rotate only a segment that holds entries — an empty active segment is
	// already the freshest possible (and re-creating it would collide on
	// O_EXCL when SegmentBytes is smaller than the header).
	if j.segSize >= j.opts.SegmentBytes && j.segSize > headerLen {
		if err := j.openSegmentLocked(); err != nil {
			return err
		}
	}
	buf := j.writeBuf[:0]
	for _, r := range batch {
		buf = append(buf, r.frame...)
	}
	j.writeBuf = buf // keep the grown buffer for the next batch
	if _, err := j.f.Write(buf); err != nil {
		return err
	}
	syncStart := time.Now()
	if err := j.f.Sync(); err != nil {
		return err
	}
	if j.obs != nil {
		syncDur := time.Since(syncStart)
		j.histFsync.Observe(syncDur)
		// Attribute the fsync to the first traced record in the batch, so a
		// traced request's timeline includes the sync it rode.
		for _, r := range batch {
			if r.trace != 0 {
				j.obs.Spans.Add(obs.Span{
					Trace: r.trace, Name: "fsync", Server: -1,
					Start: syncStart, Dur: syncDur,
				})
				break
			}
		}
	}
	j.segSize += int64(len(buf))
	for i, r := range batch {
		r.seq = j.nextSeq + uint64(i)
		if r.trace != 0 {
			// Remember which trace appended this sequence so replication can
			// stamp the shipped entry (TraceOf).
			j.traceSeq[r.seq%traceRingLen] = r.seq
			j.traceID[r.seq%traceRingLen] = r.trace
		}
	}
	j.nextSeq += uint64(len(batch))
	j.signalCommitLocked()
	j.counters.Add(CtrRecords, int64(len(batch)))
	j.counters.Add(CtrBytes, int64(len(buf)))
	j.counters.Add(CtrFsyncs, 1)
	j.counters.Add(CtrBatches, 1)
	j.counters.Max(CtrMaxBatch, int64(len(batch)))
	return nil
}
