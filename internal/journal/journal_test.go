package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"anufs/internal/sharedisk"
)

// img builds a small image for tests.
func img(version uint64, paths ...string) sharedisk.Image {
	im := sharedisk.Image{Version: version, Records: map[string]sharedisk.Record{}}
	for i, p := range paths {
		im.Records[p] = sharedisk.Record{
			Size:    int64(100 * (i + 1)),
			Mode:    0o644,
			ModTime: time.Unix(1700000000+int64(i), 123),
			Owner:   "tester",
		}
	}
	return im
}

// requireImagesEqual compares a recovered store against expected images.
func requireImagesEqual(t *testing.T, st *sharedisk.Store, want map[string]sharedisk.Image) {
	t.Helper()
	got := st.Images()
	if len(got) != len(want) {
		t.Fatalf("recovered %d file sets, want %d (%v vs %v)", len(got), len(want), keys(got), keys(want))
	}
	for fs, wim := range want {
		gim, ok := got[fs]
		if !ok {
			t.Fatalf("file set %q missing after recovery", fs)
		}
		if gim.Version != wim.Version {
			t.Fatalf("file set %q recovered at version %d, want %d", fs, gim.Version, wim.Version)
		}
		if !reflect.DeepEqual(gim.Records, wim.Records) {
			t.Fatalf("file set %q records differ:\n got %+v\nwant %+v", fs, gim.Records, wim.Records)
		}
	}
}

func keys(m map[string]sharedisk.Image) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestEntryRoundTrip(t *testing.T) {
	entries := []Entry{
		{Kind: KindCreateFileSet, FileSet: "vol00"},
		{Kind: KindFlush, FileSet: "vol01", Image: img(7, "/a", "/b/c")},
		{Kind: KindFlush, FileSet: "empty", Image: sharedisk.Image{Version: 2, Records: map[string]sharedisk.Record{}}},
		{Kind: KindFlush, FileSet: "zerotime", Image: sharedisk.Image{Version: 3, Records: map[string]sharedisk.Record{
			"/z": {Size: -1, Owner: "neg"}, // zero ModTime, negative size survive
		}}},
	}
	for _, e := range entries {
		payload := encodeEntry(e)
		got, err := decodeEntry(payload)
		if err != nil {
			t.Fatalf("decode(%+v): %v", e, err)
		}
		if got.Kind != e.Kind || got.FileSet != e.FileSet {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, e)
		}
		if e.Kind == KindFlush && !reflect.DeepEqual(got.Image, e.Image) {
			t.Fatalf("image round trip mismatch:\n got %+v\nwant %+v", got.Image, e.Image)
		}
	}
}

func TestDecodeEntryNeverPanics(t *testing.T) {
	inputs := [][]byte{
		nil, {}, {0}, {99}, {byte(KindFlush)},
		{byte(KindFlush), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		append([]byte{byte(KindCreateFileSet), 200}, make([]byte, 10)...),
		encodeEntry(Entry{Kind: KindFlush, FileSet: "x", Image: img(1, "/a")})[:5],
	}
	for _, in := range inputs {
		if _, err := decodeEntry(in); err == nil {
			// Some truncations may still parse; that is fine as long as
			// nothing panics. Only assert on clearly-broken kinds.
			if len(in) == 0 || (in[0] != byte(KindCreateFileSet) && in[0] != byte(KindFlush)) {
				t.Fatalf("decode(%x) succeeded unexpectedly", in)
			}
		}
	}
}

// TestOpenAppendRecover is the basic durability loop: journal some work,
// reopen, and get the same store back.
func TestOpenAppendRecover(t *testing.T) {
	dir := t.TempDir()
	j, st, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Entries != 0 || len(st.FileSets()) != 0 {
		t.Fatalf("fresh dir recovered non-empty: %+v", info)
	}
	if err := j.LogCreateFileSet("vol00"); err != nil {
		t.Fatal(err)
	}
	if err := j.LogCreateFileSet("vol01"); err != nil {
		t.Fatal(err)
	}
	if err := j.LogFlush("vol00", img(2, "/a")); err != nil {
		t.Fatal(err)
	}
	if err := j.LogFlush("vol00", img(3, "/a", "/b")); err != nil {
		t.Fatal(err)
	}
	if err := j.LogFlush("vol01", img(2, "/x")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil { // double close is fine
		t.Fatal(err)
	}
	if err := j.LogCreateFileSet("late"); err == nil {
		t.Fatal("append after close succeeded")
	}

	st2, info2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Truncated {
		t.Fatalf("clean log reported truncated: %+v", info2)
	}
	if info2.Entries != 5 || info2.LastSeq != 5 {
		t.Fatalf("recovered %d entries lastSeq %d, want 5/5", info2.Entries, info2.LastSeq)
	}
	requireImagesEqual(t, st2, map[string]sharedisk.Image{
		"vol00": img(3, "/a", "/b"),
		"vol01": img(2, "/x"),
	})

	// Reopen for appending: sequences continue, nothing is lost.
	j3, st3, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireImagesEqual(t, st3, st2.Images())
	if err := j3.LogFlush("vol01", img(3, "/x", "/y")); err != nil {
		t.Fatal(err)
	}
	if err := j3.Close(); err != nil {
		t.Fatal(err)
	}
	st4, info4, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info4.LastSeq != 6 {
		t.Fatalf("lastSeq = %d after reopen+append, want 6", info4.LastSeq)
	}
	requireImagesEqual(t, st4, map[string]sharedisk.Image{
		"vol00": img(3, "/a", "/b"),
		"vol01": img(3, "/x", "/y"),
	})
}

// TestSegmentRotation forces tiny segments and checks multi-segment replay.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j, _, _, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]sharedisk.Image{}
	if err := j.LogCreateFileSet("vol"); err != nil {
		t.Fatal(err)
	}
	want["vol"] = sharedisk.Image{Version: 1, Records: map[string]sharedisk.Record{}}
	for v := uint64(2); v <= 40; v++ {
		im := img(v, "/a", "/b")
		if err := j.LogFlush("vol", im); err != nil {
			t.Fatal(err)
		}
		want["vol"] = im
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	st, _, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	requireImagesEqual(t, st, want)
}

// TestSnapshotCompaction: a snapshot must compact old segments and replay
// must stack later entries on top of it.
func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	j, st, _, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	d := sharedisk.NewDurable(st, j, 0)
	if err := d.CreateFileSet("vol"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		im, err := d.Load("vol")
		if err != nil {
			t.Fatal(err)
		}
		im.Records[fmt.Sprintf("/f%02d", i)] = sharedisk.Record{Size: int64(i)}
		if _, err := d.Flush("vol", im); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) != 1 {
		t.Fatalf("snapshot left %d segments, want 1 active", len(segs))
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("got %d snapshots, want 1", len(snaps))
	}
	// More work after the snapshot lands in the tail.
	im, err := d.Load("vol")
	if err != nil {
		t.Fatal(err)
	}
	im.Records["/after"] = sharedisk.Record{Size: 999}
	if _, err := d.Flush("vol", im); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	rec, info, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.SnapshotSeq == 0 {
		t.Fatalf("recovery ignored the snapshot: %+v", info)
	}
	requireImagesEqual(t, rec, d.Store.Images())
	if got := rec.Images()["vol"].Records["/after"].Size; got != 999 {
		t.Fatalf("post-snapshot entry lost: size = %d", got)
	}
}

// TestAutomaticSnapshot: Durable cuts a snapshot every snapshotEvery
// journaled entries without being asked.
func TestAutomaticSnapshot(t *testing.T) {
	dir := t.TempDir()
	j, st, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := sharedisk.NewDurable(st, j, 8)
	if err := d.CreateFileSet("vol"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		im, err := d.Load("vol")
		if err != nil {
			t.Fatal(err)
		}
		im.Records["/f"] = sharedisk.Record{Size: int64(i)}
		if _, err := d.Flush("vol", im); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.Counters().Get(CtrSnapshots); got < 2 {
		t.Fatalf("expected >=2 automatic snapshots after 17 entries at every=8, got %d", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	rec, _, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	requireImagesEqual(t, rec, d.Store.Images())
}

// TestGroupCommitAmortizesFsyncs: with a gather window and 64 concurrent
// writers, fsyncs must be far fewer than records — the (>=2x, in practice
// >>2x) amortization the group-commit batcher exists for.
func TestGroupCommitAmortizesFsyncs(t *testing.T) {
	dir := t.TempDir()
	j, _, _, err := Open(dir, Options{FsyncInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 64, 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fs := fmt.Sprintf("vol%02d", w)
			for i := 0; i < each; i++ {
				if err := j.LogFlush(fs, img(uint64(i+2), "/a")); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	records := j.Counters().Get(CtrRecords)
	fsyncs := j.Counters().Get(CtrFsyncs)
	if records != writers*each {
		t.Fatalf("records = %d, want %d", records, writers*each)
	}
	if fsyncs*2 > records {
		t.Fatalf("group commit did not amortize: %d fsyncs for %d records", fsyncs, records)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st, info, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.LastSeq != uint64(records) {
		t.Fatalf("lastSeq = %d, want %d", info.LastSeq, records)
	}
	if got := len(st.FileSets()); got != writers {
		t.Fatalf("recovered %d file sets, want %d", got, writers)
	}
}

// TestConcurrentAppendAndSnapshot races flushes against snapshots and then
// verifies recovery equals the final in-memory state (run with -race).
func TestConcurrentAppendAndSnapshot(t *testing.T) {
	dir := t.TempDir()
	j, st, _, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	d := sharedisk.NewDurable(st, j, 0)
	const writers = 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		fs := fmt.Sprintf("vol%d", w)
		if err := d.CreateFileSet(fs); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(fs string) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				im, err := d.Load(fs)
				if err != nil {
					t.Error(err)
					return
				}
				im.Records["/n"] = sharedisk.Record{Size: int64(i)}
				if _, err := d.Flush(fs, im); err != nil {
					t.Error(err)
					return
				}
			}
		}(fs)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := d.Snapshot(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	rec, _, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	requireImagesEqual(t, rec, d.Store.Images())
}

// TestRecoverMissingDir: recovering a nonexistent directory is an empty
// store, not an error (first boot).
func TestRecoverMissingDir(t *testing.T) {
	st, info, err := Recover(filepath.Join(t.TempDir(), "nope"))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.FileSets()) != 0 || info.Entries != 0 {
		t.Fatalf("missing dir recovered non-empty: %+v", info)
	}
}

// TestCorruptSnapshotFallsBack: a damaged newest snapshot must not take the
// store down — recovery falls back to an older snapshot plus the log.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	j, st, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := sharedisk.NewDurable(st, j, 0)
	if err := d.CreateFileSet("vol"); err != nil {
		t.Fatal(err)
	}
	im, _ := d.Load("vol")
	im.Records["/a"] = sharedisk.Record{Size: 1}
	if _, err := d.Flush("vol", im); err != nil {
		t.Fatal(err)
	}
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("want 1 snapshot, got %d", len(snaps))
	}
	// Flip a byte inside the snapshot payload.
	data, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(snaps[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, info, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.SnapshotSeq != 0 {
		t.Fatalf("corrupt snapshot was adopted: %+v", info)
	}
	// The snapshot covered entries that were compacted away, so only the
	// post-snapshot tail replays — which here is empty. The store must
	// still recover without error (possibly empty), never crash.
	_ = rec
}
