package journal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"anufs/internal/sharedisk"
)

// buildLog journals a fixed multi-record history and returns the segment
// file plus the entry list in append order.
func buildLog(t *testing.T) (dir string, seg string, entries []Entry) {
	t.Helper()
	dir = t.TempDir()
	j, _, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	entries = []Entry{
		{Kind: KindCreateFileSet, FileSet: "vol00"},
		{Kind: KindCreateFileSet, FileSet: "vol01"},
		{Kind: KindFlush, FileSet: "vol00", Image: img(2, "/a")},
		{Kind: KindFlush, FileSet: "vol01", Image: img(2, "/x", "/y")},
		{Kind: KindFlush, FileSet: "vol00", Image: img(3, "/a", "/b")},
		{Kind: KindCreateFileSet, FileSet: "vol02"},
		{Kind: KindFlush, FileSet: "vol02", Image: img(2, "/only")},
		{Kind: KindFlush, FileSet: "vol01", Image: img(3, "/x")},
	}
	for _, e := range entries {
		var err error
		if e.Kind == KindCreateFileSet {
			err = j.LogCreateFileSet(e.FileSet)
		} else {
			err = j.LogFlush(e.FileSet, e.Image)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly 1 segment, got %v (%v)", segs, err)
	}
	return dir, segs[0], entries
}

// frameEnds parses the segment and returns, for each entry, the byte offset
// at which its frame ends (i.e. the smallest truncation length that keeps
// it), plus the total length.
func frameEnds(t *testing.T, seg string) []int {
	t.Helper()
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	ends := []int{}
	off := headerLen
	for off < len(data) {
		_, n, ok := nextFrame(data[off:])
		if !ok {
			t.Fatalf("segment has torn frame at %d in clean log", off)
		}
		off += n
		ends = append(ends, off)
	}
	return ends
}

// expectedPrefix folds the first k entries into the image map recovery
// should produce.
func expectedPrefix(entries []Entry, k int) map[string]sharedisk.Image {
	images := map[string]sharedisk.Image{}
	for _, e := range entries[:k] {
		applyEntry(images, e)
	}
	return images
}

// TestRecoverTruncatedAtEveryByte is the crash-injection suite the issue
// demands: for EVERY possible truncation length of a multi-record log —
// simulating a crash after any partial write — Recover must return exactly
// the store described by the longest record prefix that survived, with no
// torn record applied.
func TestRecoverTruncatedAtEveryByte(t *testing.T) {
	srcDir, seg, entries := buildLog(t)
	_ = srcDir
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	ends := frameEnds(t, seg)
	if len(ends) != len(entries) {
		t.Fatalf("segment has %d frames, want %d", len(ends), len(entries))
	}

	// prefixFor(L) = number of whole entries within the first L bytes.
	prefixFor := func(L int) int {
		k := 0
		for k < len(ends) && ends[k] <= L {
			k++
		}
		return k
	}

	for L := 0; L <= len(data); L++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(seg)), data[:L], 0o644); err != nil {
			t.Fatal(err)
		}
		st, info, err := Recover(dir)
		if err != nil {
			t.Fatalf("truncate@%d: Recover: %v", L, err)
		}
		k := prefixFor(L)
		want := expectedPrefix(entries, k)
		got := st.Images()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("truncate@%d: recovered %d entries' worth, want prefix of %d:\n got %+v\nwant %+v",
				L, info.Entries, k, got, want)
		}
		if info.Entries != k {
			t.Fatalf("truncate@%d: replayed %d entries, want %d", L, info.Entries, k)
		}
		wantTorn := L != len(data) && (L < headerLen || L != ends[max(0, k-1)] && !atFrameBoundary(L, ends, headerLen))
		_ = wantTorn // Truncated flag behaviour is covered below; state equality is the invariant here.
	}
}

// atFrameBoundary reports whether L is exactly a frame end (or the bare
// header), i.e. a truncation that looks like a clean shorter log.
func atFrameBoundary(L int, ends []int, header int) bool {
	if L == header {
		return true
	}
	for _, e := range ends {
		if e == L {
			return true
		}
	}
	return false
}

// TestRecoverBitflipAtEveryByte flips each byte of the log in turn: a
// corruption anywhere must yield some clean prefix of the history — never a
// panic, an error, or a state that includes the damaged record.
func TestRecoverBitflipAtEveryByte(t *testing.T) {
	_, seg, entries := buildLog(t)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	ends := frameEnds(t, seg)
	for pos := 0; pos < len(data); pos++ {
		dir := t.TempDir()
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x5a
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(seg)), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		st, info, err := Recover(dir)
		if err != nil {
			t.Fatalf("flip@%d: Recover: %v", pos, err)
		}
		// The damaged frame is the first whose bytes include pos; every
		// frame before it must have been applied, none after it.
		damaged := len(ends)
		for i, e := range ends {
			if pos < e {
				damaged = i
				break
			}
		}
		if pos < headerLen {
			damaged = 0
		}
		got := st.Images()
		// A flip confined to frame `damaged` leaves prefix `damaged`
		// intact. (A CRC collision could in principle accept the mutated
		// frame; CRC32 makes single-byte flips always detectable.)
		want := expectedPrefix(entries, damaged)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("flip@%d: got %d entries (info %+v), want prefix %d", pos, info.Entries, info, damaged)
		}
		if !info.Truncated {
			t.Fatalf("flip@%d: corruption not reported", pos)
		}
	}
}

// TestOpenTruncatesTornTailAndContinues: after a torn tail, Open must cut
// the tail so new appends cannot interleave with garbage, and the combined
// history (prefix + new appends) must recover cleanly.
func TestOpenTruncatesTornTailAndContinues(t *testing.T) {
	_, seg, entries := buildLog(t)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	ends := frameEnds(t, seg)
	// Cut mid-way through the 6th frame: 5 entries survive.
	cut := ends[5] - 3
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, filepath.Base(seg)), data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	j, st, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Truncated || info.Entries != 5 {
		t.Fatalf("Open after torn tail: %+v", info)
	}
	requireImagesEqual(t, st, expectedPrefix(entries, 5))
	if err := j.LogFlush("vol01", img(9, "/fresh")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rec, info2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Truncated {
		t.Fatalf("log still torn after Open cleaned it: %+v", info2)
	}
	want := expectedPrefix(entries, 5)
	want["vol01"] = img(9, "/fresh")
	requireImagesEqual(t, rec, want)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
