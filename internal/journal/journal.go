// Package journal is the durability layer under the shared disk: a
// segmented, CRC32-checksummed write-ahead log of file-set flush deltas,
// with group commit to amortize fsync cost under concurrent flushes,
// periodic snapshot + segment compaction to bound replay time, and a
// Recover path that rebuilds a sharedisk.Store from snapshot + log tail,
// truncating at the first torn or corrupt record.
//
// The paper's shared-disk substrate assumes "a flushed image is a
// consistent cut another server can adopt" (§7); this package is what makes
// that cut survive a server process crash rather than living only in
// memory. sharedisk.Durable journals every CreateFileSet/Flush through the
// WAL interface; on restart, Open replays the log and hands back an
// equivalent store.
//
// Layout of a journal directory:
//
//	wal-<firstseq:016x>.log   log segments; header then framed entries
//	snap-<seq:016x>.snap      full-store snapshots; at most one survives
//
// Entries are numbered by a monotonically increasing sequence; a segment's
// file name records the sequence of its first entry. A snapshot at sequence
// S covers entries 1..S; compaction deletes every segment wholly at or
// below S (Snapshot rotates first so that is every non-active segment).
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"anufs/internal/metrics"
	"anufs/internal/obs"
	"anufs/internal/sharedisk"
)

// Segment and snapshot file headers.
const (
	segMagic  uint32 = 0x414E554A // "ANUJ"
	snapMagic uint32 = 0x414E5553 // "ANUS"
	format    byte   = 1
	// headerLen = magic(4) + format(1) + seq(8) + CRC32 of the former (4).
	headerLen = 17
)

// putHeader fills a file header: magic, format, seq, header CRC.
func putHeader(hdr *[headerLen]byte, magic uint32, seq uint64) {
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	hdr[4] = format
	binary.LittleEndian.PutUint64(hdr[5:13], seq)
	binary.LittleEndian.PutUint32(hdr[13:17], crc32.ChecksumIEEE(hdr[0:13]))
}

// parseHeader verifies a file header and extracts the sequence.
func parseHeader(data []byte, magic uint32) (seq uint64, ok bool) {
	if len(data) < headerLen ||
		binary.LittleEndian.Uint32(data[0:4]) != magic || data[4] != format ||
		binary.LittleEndian.Uint32(data[13:17]) != crc32.ChecksumIEEE(data[0:13]) {
		return 0, false
	}
	return binary.LittleEndian.Uint64(data[5:13]), true
}

// ErrClosed is returned for appends to a closed journal.
var ErrClosed = errors.New("journal: closed")

// Counter names exported through metrics.CounterSet (and from there the
// wire stats RPC).
const (
	CtrRecords          = "journal_records_appended"
	CtrBytes            = "journal_bytes_appended"
	CtrFsyncs           = "journal_fsyncs"
	CtrBatches          = "journal_batches"
	CtrMaxBatch         = "journal_max_batch_records"
	CtrSegments         = "journal_segments_created"
	CtrSnapshots        = "journal_snapshots"
	CtrCompacted        = "journal_segments_compacted"
	CtrRecoveryNanos    = "journal_recovery_ns"
	CtrRecoveredEntries = "journal_recovered_entries"
)

// Options parameterizes a journal.
type Options struct {
	// SegmentBytes is the rotation threshold; default 4 MiB.
	SegmentBytes int64
	// FsyncInterval is the group-commit gather window: after the first
	// record of a batch arrives, the committer keeps collecting concurrent
	// appends for this long before issuing the single write+fsync. Zero
	// commits as soon as the momentarily queued appends are drained (still
	// group commit: appends arriving during an fsync ride the next batch).
	FsyncInterval time.Duration
	// NoGroupCommit forces one fsync per record — the baseline the group
	// commit benchmark compares against. Not for production use.
	NoGroupCommit bool
	// Counters receives journal observability counters; one is created if
	// nil. Retrieve it with Counters().
	Counters *metrics.CounterSet
	// Obs, when set, receives commit-path latency histograms
	// (journal_fsync_seconds, journal_commit_wait_seconds), request trace
	// spans for traced appends (LogFlushTraced), and the journal counters.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.Counters == nil {
		o.Counters = metrics.NewCounterSet()
	}
	return o
}

// Journal is an open write-ahead log. Safe for concurrent use; it
// implements sharedisk.WAL.
type Journal struct {
	dir      string
	opts     Options
	counters *metrics.CounterSet

	// obs instrumentation; all nil when Options.Obs is unset.
	obs            *obs.Registry
	histFsync      *obs.Histogram
	histCommitWait *obs.Histogram

	appendCh chan *appendReq
	quit     chan struct{} // closed by Close; stops accepting appends
	done     chan struct{} // closed when the committer goroutine exits

	// snapMu serializes Snapshot calls end to end (rotation + snapshot file
	// write + compaction).
	snapMu sync.Mutex

	// mu guards the active segment; the committer holds it per batch and
	// Snapshot holds it while capturing a cut + rotating.
	mu       sync.Mutex
	f        *os.File
	segFirst uint64 // sequence of the active segment's first entry
	segSize  int64
	writeBuf []byte // reused batch write buffer (committer-only, under mu)
	nextSeq  uint64 // sequence the next appended entry will get
	closeErr error
	closed   bool
	// commitSig is closed (and replaced) whenever the durable boundary
	// advances; CommitSignal hands it to tailers so log shipping can wait
	// for new entries without polling.
	commitSig chan struct{}
	// ackGate, when set, is called after an append is locally durable and
	// must not return until the entry is replicated (or the replication
	// policy gives up) — the semi-synchronous shipping hook (SetAckGate).
	ackGate func(seq uint64) error
	// traceRing remembers which request trace appended recent sequences
	// (guarded by mu; see TraceOf). The shipper reads it to stamp shipped
	// entries with their originating trace.
	traceSeq [traceRingLen]uint64
	traceID  [traceRingLen]uint64
}

// traceRingLen bounds the seq→trace memory: large enough to cover any
// realistic ship lag (the shipper batches at most 512 entries and resumes
// from the standby's ack), tiny enough to be free.
const traceRingLen = 4096

// TraceOf returns the request trace ID that appended sequence seq, or 0
// if the append was untraced or the ring has since wrapped past it.
func (j *Journal) TraceOf(seq uint64) uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i := seq % traceRingLen; j.traceSeq[i] == seq {
		return j.traceID[i]
	}
	return 0
}

type appendReq struct {
	frame []byte
	done  chan error
	// trace is the client request trace ID that triggered this append (0 =
	// untraced); enq timestamps the hand-off to the committer so the
	// group-commit wait is measurable.
	trace uint64
	enq   time.Time
	// seq is the sequence the committer assigned this record, valid once
	// done has been signalled without error; append passes it to the ack
	// gate so semi-sync replication waits for exactly this entry.
	seq uint64
}

// Open recovers the journal in dir (creating it if needed) and opens it for
// appending: the recovered state is returned as a fresh sharedisk.Store,
// any torn tail is physically truncated, and a new active segment is
// started after the last durable entry.
func Open(dir string, opts Options) (*Journal, *sharedisk.Store, RecoverInfo, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, RecoverInfo{}, err
	}
	images, info, err := replayDir(dir)
	if err != nil {
		return nil, nil, info, err
	}
	// Make the on-disk log agree with what replay could use: drop segments
	// stranded behind the tear, then cut the torn tail. Ordering matters —
	// see tornTailCleanupOps for why a crash anywhere in between must leave
	// a directory the next recovery derives the same prefix from.
	for _, op := range tornTailCleanupOps(info) {
		if err := op.apply(); err != nil {
			return nil, nil, info, err
		}
	}
	j := &Journal{
		dir:       dir,
		opts:      opts,
		counters:  opts.Counters,
		appendCh:  make(chan *appendReq, 256),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
		nextSeq:   info.LastSeq + 1,
		commitSig: make(chan struct{}),
	}
	j.counters.Set(CtrRecoveryNanos, info.Duration.Nanoseconds())
	j.counters.Set(CtrRecoveredEntries, int64(info.Entries))
	if opts.Obs != nil {
		j.obs = opts.Obs
		j.histFsync = opts.Obs.Hist.Get("journal_fsync_seconds", "")
		j.histCommitWait = opts.Obs.Hist.Get("journal_commit_wait_seconds", "")
		opts.Obs.AddCounters(j.counters.Snapshot)
	}
	// A restart after an idle run (or a fully-torn tail) leaves a segment
	// already named for nextSeq; it holds no durable entries, so replace it.
	if err := os.Remove(j.segmentName(j.nextSeq)); err != nil && !os.IsNotExist(err) {
		return nil, nil, info, err
	}
	if err := j.openSegmentLocked(); err != nil {
		return nil, nil, info, err
	}
	go j.run()
	return j, sharedisk.NewStoreFromImages(images, 0), info, nil
}

// Counters returns the journal's counter set.
func (j *Journal) Counters() *metrics.CounterSet { return j.counters }

// LogCreateFileSet journals a file-set creation; returns once durable.
func (j *Journal) LogCreateFileSet(fileSet string) error {
	return j.append(0, Entry{Kind: KindCreateFileSet, FileSet: fileSet})
}

// LogDrop journals the removal of a file set (fleet handoff donated it);
// returns once durable. Replay after a drop leaves no trace of the file
// set, so a restarted donor cannot resurrect a fenced copy.
func (j *Journal) LogDrop(fileSet string) error {
	return j.append(0, Entry{Kind: KindDrop, FileSet: fileSet})
}

// LogFlush journals a flushed image; returns once durable.
func (j *Journal) LogFlush(fileSet string, im sharedisk.Image) error {
	return j.append(0, Entry{Kind: KindFlush, FileSet: fileSet, Image: im})
}

// LogFlushTraced is LogFlush carrying the client request trace that forced
// the flush: the append's group-commit wait is recorded as a span under
// that trace (sharedisk.TracedWAL).
func (j *Journal) LogFlushTraced(trace uint64, fileSet string, im sharedisk.Image) error {
	return j.append(trace, Entry{Kind: KindFlush, FileSet: fileSet, Image: im})
}

// appendReqPool recycles append requests — frame buffer and reply channel
// included — so a steady append load encodes into warmed buffers instead
// of allocating one frame per record. The buffered reply channel is
// always drained before a request is pooled, so reuse cannot deliver a
// stale error.
var appendReqPool = sync.Pool{
	New: func() any { return &appendReq{done: make(chan error, 1)} },
}

// append encodes the entry as a framed record and hands it to the group
// committer, blocking until the entry is fsynced (or the journal
// fails/closes). With an ack gate armed (SetAckGate), a locally durable
// append additionally waits for the gate — semi-synchronous replication.
//
//anufs:hotpath
func (j *Journal) append(trace uint64, e Entry) error {
	r := appendReqPool.Get().(*appendReq)
	r.frame = appendEntryFrame(r.frame[:0], e)
	r.trace = trace
	r.enq = time.Now()
	r.seq = 0
	select {
	case j.appendCh <- r:
	case <-j.quit:
		appendReqPool.Put(r) // never submitted: safe to recycle
		return ErrClosed
	}
	var err error
	select {
	case err = <-r.done:
	case <-j.done:
		// The committer exited; it drained the queue first, so a reply is
		// either buffered or will never come.
		select {
		case err = <-r.done:
		default:
			// Abandoned in the queue; the request cannot be recycled.
			return ErrClosed
		}
	}
	seq := r.seq
	appendReqPool.Put(r)
	if err == nil {
		if gate := j.gate(); gate != nil {
			err = gate(seq)
		}
	}
	return err
}

// SetAckGate installs a replication gate: every subsequent append, once
// locally durable, also blocks until gate(seq) returns. The gate receives
// the entry's journal sequence; a nil gate (the default) disables the wait.
// anufsd arms this with the shipper's WaitAcked when -replicate-sync is on,
// making "Flush returned nil" mean "fsynced here AND acked by the standby".
func (j *Journal) SetAckGate(gate func(seq uint64) error) {
	j.mu.Lock()
	j.ackGate = gate
	j.mu.Unlock()
}

func (j *Journal) gate() func(uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ackGate
}

// DurableSeq returns the sequence of the last fsynced entry (0 before the
// first). Everything at or below it is readable via a Tailer.
func (j *Journal) DurableSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextSeq - 1
}

// CommitSignal returns a channel that is closed the next time the durable
// boundary advances. Callers re-fetch it after each wakeup; the canonical
// wait loop captures the channel BEFORE reading DurableSeq so an advance
// between the two cannot be missed.
func (j *Journal) CommitSignal() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.commitSig
}

// signalCommitLocked wakes every CommitSignal waiter. Callers hold mu and
// have just advanced nextSeq.
func (j *Journal) signalCommitLocked() {
	close(j.commitSig)
	j.commitSig = make(chan struct{})
}

// Close commits everything queued, fsyncs, and closes the active segment.
// Further appends return ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		<-j.done
		return j.closeErr
	}
	j.closed = true
	j.mu.Unlock()
	close(j.quit)
	<-j.done
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		if err := j.f.Close(); err != nil && j.closeErr == nil {
			j.closeErr = err
		}
		j.f = nil
	}
	return j.closeErr
}

// segmentName returns the path of the segment whose first entry is seq.
func (j *Journal) segmentName(seq uint64) string {
	return filepath.Join(j.dir, fmt.Sprintf("wal-%016x.log", seq))
}

// openSegmentLocked starts a fresh active segment at nextSeq. Callers hold
// mu (or have exclusive access during Open).
func (j *Journal) openSegmentLocked() error {
	if j.f != nil {
		if err := j.f.Close(); err != nil {
			return err
		}
		j.f = nil
	}
	f, err := os.OpenFile(j.segmentName(j.nextSeq), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	var hdr [headerLen]byte
	putHeader(&hdr, segMagic, j.nextSeq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(j.dir); err != nil {
		f.Close()
		return err
	}
	j.f = f
	j.segFirst = j.nextSeq
	j.segSize = headerLen
	j.counters.Add(CtrSegments, 1)
	return nil
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
