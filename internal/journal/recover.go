package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"anufs/internal/sharedisk"
)

// RecoverInfo reports what recovery found and did.
type RecoverInfo struct {
	// SnapshotSeq is the sequence the adopted snapshot covers (0 = none).
	SnapshotSeq uint64
	// Entries is the number of log entries replayed on top of the snapshot.
	Entries int
	// LastSeq is the sequence of the last durable entry.
	LastSeq uint64
	// FileSets is the number of file sets in the recovered store.
	FileSets int
	// Truncated reports that a torn or corrupt record ended the replay
	// early; TruncatedSegment/ValidBytes locate the cut.
	Truncated        bool
	TruncatedSegment string
	ValidBytes       int64
	// Duration is the wall time replay took.
	Duration time.Duration

	// strandedSegments are segments after the truncation point; Open
	// deletes them so future appends cannot resurrect discarded suffixes.
	strandedSegments []string
}

// cleanupOp is one filesystem mutation of the torn-tail cleanup. Keeping
// the plan enumerable lets the crash-injection tests stop it after any
// step and assert the directory still recovers to the same prefix.
type cleanupOp struct {
	path string
	// truncate cuts the file to validBytes; otherwise the file is removed.
	truncate   bool
	validBytes int64
}

func (op cleanupOp) apply() error {
	if op.truncate {
		if err := os.Truncate(op.path, op.validBytes); err != nil {
			return fmt.Errorf("journal: truncate torn tail: %w", err)
		}
		return nil
	}
	if err := os.Remove(op.path); err != nil {
		return fmt.Errorf("journal: drop segment past the tear: %w", err)
	}
	return nil
}

// tornTailCleanupOps plans the mutations that make the on-disk log agree
// with what replay could use after a tear. Ordering is load-bearing:
// stranded segments are removed first, NEWEST first, and the torn segment
// is cut last. A crash after any prefix of these ops then leaves the torn
// segment in place, so the next recovery re-derives the same truncation
// point and never replays a stranded segment past the hole. (Cutting the
// torn segment first looks clean to the next recovery, which would then
// replay the surviving stranded segments — resurrecting entries this
// recovery already discarded and leaving a sequence gap.) A segment whose
// very header is unreadable keeps no bytes — it is removed outright so it
// cannot wedge the next recovery at offset zero.
func tornTailCleanupOps(info RecoverInfo) []cleanupOp {
	if !info.Truncated {
		return nil
	}
	ops := make([]cleanupOp, 0, len(info.strandedSegments)+1)
	for i := len(info.strandedSegments) - 1; i >= 0; i-- {
		ops = append(ops, cleanupOp{path: info.strandedSegments[i]})
	}
	if info.ValidBytes < headerLen {
		ops = append(ops, cleanupOp{path: info.TruncatedSegment})
	} else {
		ops = append(ops, cleanupOp{path: info.TruncatedSegment, truncate: true, validBytes: info.ValidBytes})
	}
	return ops
}

// Recover replays the journal directory read-only and returns the
// prefix-consistent store it describes: the newest intact snapshot plus
// every intact log entry after it, stopping at the first torn or corrupt
// record. A missing or empty directory recovers to an empty store.
func Recover(dir string) (*sharedisk.Store, RecoverInfo, error) {
	images, info, err := replayDir(dir)
	if err != nil {
		return nil, info, err
	}
	return sharedisk.NewStoreFromImages(images, 0), info, nil
}

// replayDir does the work of Recover without materializing a store.
func replayDir(dir string) (map[string]sharedisk.Image, RecoverInfo, error) {
	start := time.Now()
	info := RecoverInfo{}
	images := map[string]sharedisk.Image{}

	// Adopt the newest intact snapshot; a corrupt one (crash mid write
	// would normally be caught by the atomic rename, but disks lie) falls
	// back to the next newest.
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil {
		return nil, info, err
	}
	sort.Sort(sort.Reverse(sort.StringSlice(snaps)))
	for _, p := range snaps {
		ims, seq, err := loadSnapshot(p)
		if err != nil {
			continue
		}
		images, info.SnapshotSeq = ims, seq
		break
	}
	info.LastSeq = info.SnapshotSeq

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return nil, info, err
	}
	sort.Strings(segs)
	for i, p := range segs {
		done, err := replaySegment(p, images, &info)
		if err != nil {
			return nil, info, err
		}
		if done {
			info.strandedSegments = segs[i+1:]
			break
		}
	}
	info.FileSets = len(images)
	info.Duration = time.Since(start)
	return images, info, nil
}

// replaySegment applies one segment's intact entries. done=true means a
// torn/corrupt record (or bad header) was hit and replay must stop for good
// — a later segment cannot be trusted past a hole.
func replaySegment(path string, images map[string]sharedisk.Image, info *RecoverInfo) (done bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	torn := func(valid int64) (bool, error) {
		info.Truncated = true
		info.TruncatedSegment = path
		info.ValidBytes = valid
		return true, nil
	}
	seq, ok := parseHeader(data, segMagic)
	if !ok {
		// An unreadable header strands the whole segment: nothing in it can
		// be sequenced, so recovery keeps none of it.
		return torn(0)
	}
	off := int64(headerLen)
	for int(off) < len(data) {
		payload, n, ok := nextFrame(data[off:])
		if !ok {
			return torn(off)
		}
		e, err := decodeEntry(payload)
		if err != nil {
			return torn(off)
		}
		off += int64(n)
		if seq > info.LastSeq {
			info.LastSeq = seq
		}
		if seq > info.SnapshotSeq {
			applyEntry(images, e)
			info.Entries++
		}
		seq++
	}
	return false, nil
}

// applyEntry folds one entry into the image map. Application is
// "if newer": a flush installs its image only over a lower version, and a
// create never clobbers an existing file set — so replay is idempotent and
// tolerant of entries a snapshot already covers.
func applyEntry(images map[string]sharedisk.Image, e Entry) {
	switch e.Kind {
	case KindCreateFileSet:
		if _, ok := images[e.FileSet]; !ok {
			images[e.FileSet] = sharedisk.Image{Version: 1, Records: map[string]sharedisk.Record{}}
		}
	case KindFlush:
		if cur, ok := images[e.FileSet]; !ok || e.Image.Version > cur.Version {
			images[e.FileSet] = e.Image
		}
	case KindDrop:
		delete(images, e.FileSet)
	}
}

// loadSnapshot reads and verifies one snapshot file.
func loadSnapshot(path string) (map[string]sharedisk.Image, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	seq, ok := parseHeader(data, snapMagic)
	if !ok {
		return nil, 0, fmt.Errorf("%w: bad snapshot header", ErrCorrupt)
	}
	payload, n, ok := nextFrame(data[headerLen:])
	if !ok || headerLen+n != len(data) {
		return nil, 0, fmt.Errorf("%w: torn snapshot", ErrCorrupt)
	}
	images, err := decodeImages(payload)
	if err != nil {
		return nil, 0, err
	}
	return images, seq, nil
}
