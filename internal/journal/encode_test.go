package journal

import (
	"testing"
	"time"

	"anufs/internal/sharedisk"
)

func benchEntry() Entry {
	im := sharedisk.Image{Version: 7, Records: map[string]sharedisk.Record{}}
	mod := time.Unix(0, 1754560000000000000)
	for _, p := range []string{"/a", "/b/c", "/b/d", "/e"} {
		im.Records[p] = sharedisk.Record{Size: 4096, Mode: 0o644, ModTime: mod, Owner: "alice"}
	}
	return Entry{Kind: KindFlush, FileSet: "fs00", Image: im}
}

// TestAppendEntryFrameMatchesTwoPass pins the one-pass framed encoding
// against the original encode-then-frame composition, including the
// backfilled length and CRC.
func TestAppendEntryFrameMatchesTwoPass(t *testing.T) {
	entries := []Entry{
		{Kind: KindCreateFileSet, FileSet: "fs00"},
		{Kind: KindDrop, FileSet: "fs01"},
		benchEntry(),
	}
	for i, e := range entries {
		want := appendFrame(nil, encodeEntry(e))
		got := appendEntryFrame([]byte("prefix"), e)
		if string(got[:6]) != "prefix" {
			t.Fatalf("entry %d: prefix clobbered", i)
		}
		if string(got[6:]) != string(want) {
			t.Errorf("entry %d: one-pass frame differs from two-pass", i)
		}
		payload, n, ok := nextFrame(got[6:])
		if !ok || n != len(want) {
			t.Fatalf("entry %d: frame does not parse back", i)
		}
		if _, err := decodeEntry(payload); err != nil {
			t.Errorf("entry %d: payload does not decode: %v", i, err)
		}
	}
}

// TestAppendEntryFrameAllocFree is the journal half of the hot-path
// allocation contract: encoding into a warmed buffer allocates nothing.
func TestAppendEntryFrameAllocFree(t *testing.T) {
	e := benchEntry()
	var buf []byte
	if n := testing.AllocsPerRun(100, func() {
		buf = appendEntryFrame(buf[:0], e)
	}); n != 0 {
		t.Errorf("appendEntryFrame: %v allocs/op, want 0", n)
	}
}

// BenchmarkEncodeEntryFrame rides the same CI allocation guard as the
// wire codec benchmarks (cmd/allocguard asserts 0 allocs/op).
func BenchmarkEncodeEntryFrame(b *testing.B) {
	e := benchEntry()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = appendEntryFrame(buf[:0], e)
	}
}
