package journal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"anufs/internal/sharedisk"
)

// Snapshot persists a full cut of the store and compacts the log: the cut
// is captured while the committer is paused (so it reflects every durable
// entry up to the captured sequence), written to a temp file, fsynced,
// renamed into place, and only then are the covered segments and any older
// snapshots deleted. A crash anywhere in between leaves a recoverable
// directory — the rename is the commit point.
//
// images is a closure (rather than a pre-captured map) precisely so the cut
// cannot be older than the sequence it claims to cover: an entry acked
// before the capture has necessarily been applied to the store already.
func (j *Journal) Snapshot(images func() map[string]sharedisk.Image) error {
	j.snapMu.Lock()
	defer j.snapMu.Unlock()

	j.mu.Lock()
	if j.f == nil {
		j.mu.Unlock()
		return ErrClosed
	}
	cut := images()
	seq := j.nextSeq - 1
	// Rotate so every non-active segment holds only entries <= seq. An
	// active segment with no entries yet is already in that position (and
	// re-creating it would collide on O_EXCL).
	if j.segSize > headerLen {
		if err := j.openSegmentLocked(); err != nil {
			j.mu.Unlock()
			return err
		}
	}
	activeName := j.f.Name()
	j.mu.Unlock()

	if err := writeSnapshot(j.dir, seq, cut); err != nil {
		return err
	}
	j.counters.Add(CtrSnapshots, 1)
	return j.compact(seq, activeName)
}

// compact removes everything the snapshot at seq supersedes: all non-active
// segments and all snapshots below seq.
func (j *Journal) compact(seq uint64, activeName string) error {
	segs, err := filepath.Glob(filepath.Join(j.dir, "wal-*.log"))
	if err != nil {
		return err
	}
	removed := 0
	for _, p := range segs {
		if p == activeName {
			continue
		}
		if err := os.Remove(p); err != nil {
			return err
		}
		removed++
	}
	j.counters.Add(CtrCompacted, int64(removed))
	snaps, err := filepath.Glob(filepath.Join(j.dir, "snap-*.snap"))
	if err != nil {
		return err
	}
	for _, p := range snaps {
		if s, ok := seqFromName(filepath.Base(p), "snap-", ".snap"); ok && s < seq {
			if err := os.Remove(p); err != nil {
				return err
			}
		}
	}
	return syncDir(j.dir)
}

// writeSnapshot writes snap-<seq>.snap atomically (temp + fsync + rename +
// dir fsync). Body: header, then one CRC frame holding the encoded images.
func writeSnapshot(dir string, seq uint64, images map[string]sharedisk.Image) error {
	var hdr [headerLen]byte
	putHeader(&hdr, snapMagic, seq)
	buf := append([]byte(nil), hdr[:]...)
	buf = appendFrame(buf, encodeImages(images))

	final := filepath.Join(dir, fmt.Sprintf("snap-%016x.snap", seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return syncDir(dir)
}

// encodeImages serializes a full store cut.
func encodeImages(images map[string]sharedisk.Image) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(images)))
	for fs, im := range images {
		buf = appendString(buf, fs)
		buf = appendImage(buf, im)
	}
	return buf
}

// decodeImages parses a full store cut; ErrCorrupt on any malformation.
func decodeImages(payload []byte) (map[string]sharedisk.Image, error) {
	c := &cursor{b: payload}
	n := c.uvarint()
	if c.err != nil || n > uint64(len(c.b)-c.off) {
		return nil, ErrCorrupt
	}
	images := make(map[string]sharedisk.Image, n)
	for i := uint64(0); i < n && c.err == nil; i++ {
		fs := c.str()
		images[fs] = c.image()
	}
	if c.err != nil {
		return nil, c.err
	}
	if c.off != len(c.b) {
		return nil, fmt.Errorf("%w: %d trailing snapshot bytes", ErrCorrupt, len(c.b)-c.off)
	}
	return images, nil
}

// seqFromName parses the hex sequence out of a journal file name.
func seqFromName(name, prefix, suffix string) (uint64, bool) {
	if len(name) != len(prefix)+16+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0, false
	}
	var seq uint64
	if _, err := fmt.Sscanf(name[len(prefix):len(prefix)+16], "%016x", &seq); err != nil {
		return 0, false
	}
	return seq, true
}
