// Package trace defines the request-trace representation that drives the
// simulator, an on-disk text format, and a generator that synthesizes a
// DFSTrace-like workload.
//
// The paper drives its experiments with a one-hour high-activity slice of
// the CMU DFSTrace traces (Mummert & Satyanarayanan): 112,590 client
// requests against 21 file sets, with the most active file set more than
// one hundred times as active as the least (§7). The raw traces are not
// redistributable, so GenerateDFSLike synthesizes a trace with exactly
// those published aggregate properties — request count, file-set count,
// ≥100× activity skew, and bursty arrivals — which are the properties the
// paper's figures actually exercise. DESIGN.md §2 records the substitution.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"anufs/internal/rng"
)

// Request is one metadata request: it arrives At seconds into the trace,
// targets the named file set, and carries Work seconds of service time as
// calibrated on a speed-1 server.
type Request struct {
	At      float64
	FileSet string
	Work    float64
}

// Trace is a time-ordered request sequence.
type Trace struct {
	Requests []Request
}

// Len reports the number of requests.
func (t *Trace) Len() int { return len(t.Requests) }

// Duration reports the arrival time of the last request (0 for empty).
func (t *Trace) Duration() float64 {
	if len(t.Requests) == 0 {
		return 0
	}
	return t.Requests[len(t.Requests)-1].At
}

// FileSets returns the distinct file-set names, sorted.
func (t *Trace) FileSets() []string {
	seen := map[string]bool{}
	for _, r := range t.Requests {
		seen[r.FileSet] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Sort orders requests by arrival time (stable, so equal-time requests keep
// generation order and runs stay deterministic).
func (t *Trace) Sort() {
	sort.SliceStable(t.Requests, func(i, j int) bool {
		return t.Requests[i].At < t.Requests[j].At
	})
}

// Validate checks the trace is time-ordered with non-negative fields.
func (t *Trace) Validate() error {
	prev := -1.0
	for i, r := range t.Requests {
		if r.At < 0 || r.Work < 0 {
			return fmt.Errorf("trace: request %d has negative field: %+v", i, r)
		}
		if r.At < prev {
			return fmt.Errorf("trace: request %d out of order (%v after %v)", i, r.At, prev)
		}
		if r.FileSet == "" {
			return fmt.Errorf("trace: request %d has empty file set", i)
		}
		prev = r.At
	}
	return nil
}

// CountByFileSet tallies requests per file set.
func (t *Trace) CountByFileSet() map[string]int {
	m := map[string]int{}
	for _, r := range t.Requests {
		m[r.FileSet]++
	}
	return m
}

// WorkByFileSetInWindow sums the service work per file set for requests
// with lo <= At < hi. The prescient placement policy uses this as its
// perfect lookahead (§7: the prescient algorithm "looks forward into the
// trace").
func (t *Trace) WorkByFileSetInWindow(lo, hi float64) map[string]float64 {
	m := map[string]float64{}
	// Requests are sorted; binary search the window start.
	i := sort.Search(len(t.Requests), func(i int) bool { return t.Requests[i].At >= lo })
	for ; i < len(t.Requests) && t.Requests[i].At < hi; i++ {
		m[t.Requests[i].FileSet] += t.Requests[i].Work
	}
	return m
}

// Write emits the trace in the text format: a header line "# anufs-trace v1"
// then one "<at> <fileset> <work>" line per request.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# anufs-trace v1"); err != nil {
		return err
	}
	for _, r := range t.Requests {
		if strings.ContainsAny(r.FileSet, " \t\n") {
			return fmt.Errorf("trace: file set name %q contains whitespace", r.FileSet)
		}
		// 'g' with precision -1 round-trips float64 exactly.
		at := strconv.FormatFloat(r.At, 'g', -1, 64)
		work := strconv.FormatFloat(r.Work, 'g', -1, 64)
		if _, err := fmt.Fprintf(bw, "%s %s %s\n", at, r.FileSet, work); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the text format produced by Write. Blank lines and lines
// beginning with '#' are ignored.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	t := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 3 fields, got %d", lineNo, len(fields))
		}
		at, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad time: %v", lineNo, err)
		}
		work, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad work: %v", lineNo, err)
		}
		t.Requests = append(t.Requests, Request{At: at, FileSet: fields[1], Work: work})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// DFSLikeConfig parameterizes the DFSTrace-like generator. The defaults
// (DefaultDFSLike) match the aggregate statistics the paper reports for its
// one-hour slice.
type DFSLikeConfig struct {
	Seed     uint64
	FileSets int     // number of file sets (paper: 21)
	Requests int     // total request count (paper: 112,590)
	Duration float64 // seconds (paper: 3600)
	// SkewRatio is the minimum most/least active request ratio (paper:
	// "more than one hundred times").
	SkewRatio float64
	// BurstFraction is the fraction of each file set's requests that arrive
	// inside burst episodes rather than as background traffic; bursts are
	// what make the trace's per-window workload shift over time (the
	// "temporal heterogeneity" of §1).
	BurstFraction float64
	// Bursts is the number of burst episodes per file set.
	Bursts int
	// MeanWork is the mean per-request service time on a speed-1 server,
	// in seconds. Metadata requests are uniform and small (§2), so work is
	// MeanWork ± 20%.
	MeanWork float64
}

// DefaultDFSLike returns the configuration matching the paper's trace slice.
// MeanWork is calibrated so the 5-server cluster with speeds 1,3,5,7,9 runs
// at ~25% aggregate utilization: balanced placements serve in tens to
// hundreds of milliseconds, while a heterogeneity-blind equal split (or the
// most active file set parked on the speed-1 server) saturates that server
// so its latency grows over the hour — the shape of the paper's
// static-policy curves.
func DefaultDFSLike(seed uint64) DFSLikeConfig {
	return DFSLikeConfig{
		Seed:          seed,
		FileSets:      21,
		Requests:      112590,
		Duration:      3600,
		SkewRatio:     100,
		BurstFraction: 0.2,
		Bursts:        3,
		MeanWork:      0.2, // 112590 req × 0.2 s / (3600 s × 25 speed) ≈ 0.25
	}
}

// GenerateDFSLike synthesizes a DFSTrace-like trace (see package comment).
func GenerateDFSLike(cfg DFSLikeConfig) *Trace {
	if cfg.FileSets < 2 || cfg.Requests < cfg.FileSets || cfg.Duration <= 0 {
		panic(fmt.Sprintf("trace: invalid DFSLikeConfig %+v", cfg))
	}
	r := rng.NewStream(cfg.Seed)

	// Per-file-set activity weights: log-uniform over the skew ratio, then
	// the extremes pinned so the published ≥SkewRatio property holds by
	// construction.
	span := 2.0 // decades
	if cfg.SkewRatio > 0 {
		span = log10(cfg.SkewRatio)
	}
	weights := make([]float64, cfg.FileSets)
	for i := range weights {
		weights[i] = pow10(span * r.Float64())
	}
	// Pin the most/least active file sets to the span's endpoints.
	weights[0] = 1
	weights[1] = pow10(span) * 1.05 // strictly more than SkewRatio×
	var wsum float64
	for _, w := range weights {
		wsum += w
	}

	// Apportion the exact request total by largest remainder.
	counts := apportion(weights, cfg.Requests)

	t := &Trace{Requests: make([]Request, 0, cfg.Requests)}
	for i, n := range counts {
		name := fmt.Sprintf("fs%02d", i)
		fsr := r.Split()
		// Burst windows: each covers 5–12% of the duration, roughly doubling
		// the file set's rate while active — enough to shift per-window load
		// like DFSTrace's activity phases without driving a well-placed
		// server far past saturation.
		type window struct{ lo, hi float64 }
		var bursts []window
		for b := 0; b < cfg.Bursts; b++ {
			length := cfg.Duration * fsr.Uniform(0.05, 0.12)
			lo := fsr.Uniform(0, cfg.Duration-length)
			bursts = append(bursts, window{lo, lo + length})
		}
		nBurst := int(float64(n) * cfg.BurstFraction)
		for k := 0; k < n; k++ {
			var at float64
			if k < nBurst && len(bursts) > 0 {
				w := bursts[k%len(bursts)]
				at = fsr.Uniform(w.lo, w.hi)
			} else {
				at = fsr.Uniform(0, cfg.Duration)
			}
			work := cfg.MeanWork * fsr.Uniform(0.8, 1.2)
			t.Requests = append(t.Requests, Request{At: at, FileSet: name, Work: work})
		}
	}
	t.Sort()
	return t
}

// apportion splits total into integer counts proportional to weights,
// summing exactly to total, each at least 1.
func apportion(weights []float64, total int) []int {
	n := len(weights)
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	counts := make([]int, n)
	assigned := 0
	type frac struct {
		idx int
		r   float64
	}
	fr := make([]frac, n)
	for i, w := range weights {
		exact := w / wsum * float64(total)
		counts[i] = int(exact)
		if counts[i] < 1 {
			counts[i] = 1
		}
		assigned += counts[i]
		fr[i] = frac{i, exact - float64(int(exact))}
	}
	sort.Slice(fr, func(a, b int) bool {
		if fr[a].r != fr[b].r {
			return fr[a].r > fr[b].r
		}
		return fr[a].idx < fr[b].idx
	})
	for k := 0; assigned < total; k = (k + 1) % n {
		counts[fr[k].idx]++
		assigned++
	}
	for k := 0; assigned > total; k = (k + 1) % n {
		if idx := fr[n-1-k].idx; counts[idx] > 1 {
			counts[idx]--
			assigned--
		}
	}
	return counts
}

func log10(x float64) float64 { return math.Log10(x) }

func pow10(x float64) float64 { return math.Pow(10, x) }
