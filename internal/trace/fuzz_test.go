package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead hardens the trace parser: arbitrary input must either parse into
// a valid trace or fail cleanly — never panic, never yield an invalid trace.
func FuzzRead(f *testing.F) {
	f.Add("# anufs-trace v1\n1 fs0 0.5\n2 fs1 0.25\n")
	f.Add("")
	f.Add("1 fs0\n")
	f.Add("abc fs0 1\n")
	f.Add("1 fs0 1\n0.5 fs1 1\n") // out of order
	f.Add("1e308 fs0 1e308\n")
	f.Add("# only a comment\n\n\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("Read accepted an invalid trace: %v", err)
		}
		// A successfully parsed trace must round-trip.
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			// Write only rejects whitespace in names, which Fields cannot
			// have produced.
			t.Fatalf("Write of parsed trace failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-Read of written trace failed: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round trip changed length: %d -> %d", tr.Len(), back.Len())
		}
	})
}
