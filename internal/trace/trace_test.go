package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestGenerateDFSLikeMatchesPublishedStats(t *testing.T) {
	cfg := DefaultDFSLike(1)
	tr := GenerateDFSLike(cfg)
	if tr.Len() != cfg.Requests {
		t.Fatalf("Len = %d, want exactly %d (paper: 112,590 requests)", tr.Len(), cfg.Requests)
	}
	fs := tr.FileSets()
	if len(fs) != cfg.FileSets {
		t.Fatalf("%d file sets, want %d (paper: 21)", len(fs), cfg.FileSets)
	}
	if d := tr.Duration(); d > cfg.Duration || d < 0.9*cfg.Duration {
		t.Fatalf("duration %v, want ~%v", d, cfg.Duration)
	}
	counts := tr.CountByFileSet()
	min, max := math.MaxInt, 0
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if ratio := float64(max) / float64(min); ratio < cfg.SkewRatio {
		t.Fatalf("activity skew %v, want >= %v (paper: 'more than one hundred times')", ratio, cfg.SkewRatio)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := GenerateDFSLike(DefaultDFSLike(7))
	b := GenerateDFSLike(DefaultDFSLike(7))
	if a.Len() != b.Len() {
		t.Fatal("lengths differ for same seed")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a.Requests[i], b.Requests[i])
		}
	}
	c := GenerateDFSLike(DefaultDFSLike(8))
	same := 0
	for i := range a.Requests {
		if a.Requests[i] == c.Requests[i] {
			same++
		}
	}
	if same == a.Len() {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	GenerateDFSLike(DFSLikeConfig{FileSets: 1, Requests: 10, Duration: 1})
}

func TestGenerateUtilizationCalibration(t *testing.T) {
	cfg := DefaultDFSLike(1)
	tr := GenerateDFSLike(cfg)
	var work float64
	for _, r := range tr.Requests {
		work += r.Work
	}
	util := work / (cfg.Duration * 25) // speeds 1+3+5+7+9
	if util < 0.15 || util > 0.4 {
		t.Fatalf("aggregate utilization %v, want ~0.25 (below peak load, §7)", util)
	}
}

func TestGenerateBurstiness(t *testing.T) {
	// The busiest file set's per-minute request counts must vary strongly:
	// bursts are what drive the paper's time-varying latency curves.
	tr := GenerateDFSLike(DefaultDFSLike(3))
	counts := tr.CountByFileSet()
	busiest, best := "", 0
	for n, c := range counts {
		if c > best {
			busiest, best = n, c
		}
	}
	perMin := make([]float64, 60)
	for _, r := range tr.Requests {
		if r.FileSet == busiest {
			m := int(r.At / 60)
			if m >= 0 && m < 60 {
				perMin[m]++
			}
		}
	}
	mean, sq := 0.0, 0.0
	for _, c := range perMin {
		mean += c
	}
	mean /= 60
	for _, c := range perMin {
		sq += (c - mean) * (c - mean)
	}
	cov := math.Sqrt(sq/60) / mean
	if cov < 0.2 {
		t.Fatalf("busiest file set per-minute CoV %v, want >= 0.2 (bursty)", cov)
	}
}

func TestRoundTrip(t *testing.T) {
	cfg := DefaultDFSLike(5)
	cfg.Requests = 500
	orig := GenerateDFSLike(cfg)
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("round trip lost requests: %d vs %d", back.Len(), orig.Len())
	}
	for i := range orig.Requests {
		a, b := orig.Requests[i], back.Requests[i]
		if a.FileSet != b.FileSet || math.Abs(a.At-b.At) > 1e-6 || math.Abs(a.Work-b.Work) > 1e-9 {
			t.Fatalf("request %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestWriteRejectsWhitespaceNames(t *testing.T) {
	tr := &Trace{Requests: []Request{{At: 0, FileSet: "bad name", Work: 1}}}
	if err := tr.Write(&bytes.Buffer{}); err == nil {
		t.Fatal("whitespace name accepted")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"bad field count": "1.0 fs\n",
		"bad time":        "abc fs 1\n",
		"bad work":        "1.0 fs xyz\n",
		"out of order":    "5 fs 1\n1 fs 1\n",
		"negative":        "-1 fs 1\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n1 fs0 0.5\n# mid comment\n2 fs1 0.25\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
}

func TestEmptyTrace(t *testing.T) {
	tr := &Trace{}
	if tr.Duration() != 0 || tr.Len() != 0 {
		t.Fatal("empty trace misreports")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.FileSets(); len(got) != 0 {
		t.Fatalf("FileSets on empty = %v", got)
	}
}

func TestWorkByFileSetInWindow(t *testing.T) {
	tr := &Trace{Requests: []Request{
		{At: 0, FileSet: "a", Work: 1},
		{At: 5, FileSet: "a", Work: 2},
		{At: 5, FileSet: "b", Work: 3},
		{At: 10, FileSet: "a", Work: 4},
	}}
	m := tr.WorkByFileSetInWindow(5, 10)
	if m["a"] != 2 || m["b"] != 3 || len(m) != 2 {
		t.Fatalf("window work = %v", m)
	}
	if got := tr.WorkByFileSetInWindow(11, 20); len(got) != 0 {
		t.Fatalf("empty window returned %v", got)
	}
}

func TestValidateCatchesDisorder(t *testing.T) {
	tr := &Trace{Requests: []Request{{At: 2, FileSet: "a", Work: 1}, {At: 1, FileSet: "a", Work: 1}}}
	if err := tr.Validate(); err == nil {
		t.Fatal("disorder accepted")
	}
	tr.Sort()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApportionExact(t *testing.T) {
	counts := apportion([]float64{1, 100, 10000}, 1000)
	sum := 0
	for _, c := range counts {
		sum += c
		if c < 1 {
			t.Fatalf("count below 1: %v", counts)
		}
	}
	if sum != 1000 {
		t.Fatalf("apportion sum %d, want 1000", sum)
	}
	if counts[2] <= counts[1] || counts[1] <= counts[0] {
		t.Fatalf("apportion not monotone in weight: %v", counts)
	}
}

func BenchmarkGenerateDFSLike(b *testing.B) {
	cfg := DefaultDFSLike(1)
	cfg.Requests = 10000
	for i := 0; i < b.N; i++ {
		GenerateDFSLike(cfg)
	}
}
