package sdk

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"anufs/internal/sharedisk"
	"anufs/internal/wire"
)

// Without batching, the client is a routed typed API: writes land on the
// owning daemon and reads see them.
func TestClientUnbatched(t *testing.T) {
	f := startFleet(t, 2)
	c, err := NewClient(Options{Authority: f.authority(), Timeout: 5 * time.Second, Budget: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, fs := range []string{"vol00", "vol01"} {
		if err := c.CreateFileSet(fs); err != nil {
			t.Fatal(err)
		}
		if err := c.Create(fs, "/a", sharedisk.Record{Size: 3}); err != nil {
			t.Fatal(err)
		}
		if err := c.Update(fs, "/a", sharedisk.Record{Size: 4}); err != nil {
			t.Fatal(err)
		}
		rec, err := c.Stat(fs, "/a")
		if err != nil || rec.Size != 4 {
			t.Fatalf("%s stat = %+v, %v", fs, rec, err)
		}
		paths, err := c.List(fs, "/")
		if err != nil || len(paths) != 1 {
			t.Fatalf("%s list = %v, %v", fs, paths, err)
		}
		if err := c.Remove(fs, "/a"); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Stat(fs, "/a"); err == nil {
			t.Fatalf("%s stat after remove succeeded", fs)
		}
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
}

// With batching on, concurrent small writes coalesce into far fewer round
// trips, every caller still learns its own outcome, and Stat flushes the
// file set first so a client reads its own writes.
func TestClientBatchingCoalesces(t *testing.T) {
	f := startFleet(t, 2)
	c, err := NewClient(Options{
		Authority:  f.authority(),
		Timeout:    5 * time.Second,
		Budget:     5 * time.Second,
		BatchDelay: 20 * time.Millisecond,
		MaxBatch:   32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, fs := range []string{"vol00", "vol01"} {
		if err := c.CreateFileSet(fs); err != nil {
			t.Fatal(err)
		}
	}

	const writers = 100
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fs := fmt.Sprintf("vol%02d", i%2)
			errs[i] = c.Create(fs, fmt.Sprintf("/f%03d", i), sharedisk.Record{Size: int64(i + 1)})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	for i := 0; i < writers; i++ {
		fs := fmt.Sprintf("vol%02d", i%2)
		rec, err := c.Stat(fs, fmt.Sprintf("/f%03d", i))
		if err != nil || rec.Size != int64(i+1) {
			t.Fatalf("stat %d = %+v, %v", i, rec, err)
		}
	}

	ops := c.counters.Get(CtrBatchedOps)
	batches := c.counters.Get(CtrBatchesSent)
	if ops != writers {
		t.Fatalf("batched ops = %d, want %d", ops, writers)
	}
	if batches == 0 || batches >= writers {
		t.Fatalf("batches = %d for %d concurrent writes: no coalescing", batches, writers)
	}
	t.Logf("%d writes coalesced into %d batches", ops, batches)
}

// A batched item's per-item error reaches exactly its caller; the rest of
// the batch is unaffected.
func TestClientBatchedErrorIsPerItem(t *testing.T) {
	f := startFleet(t, 1)
	c, err := NewClient(Options{
		Authority:  f.authority(),
		Timeout:    5 * time.Second,
		Budget:     5 * time.Second,
		BatchDelay: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateFileSet("vol00"); err != nil {
		t.Fatal(err)
	}
	if err := c.Create("vol00", "/dup", sharedisk.Record{Size: 1}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var dupErr, okErr error
	wg.Add(2)
	go func() { defer wg.Done(); dupErr = c.Create("vol00", "/dup", sharedisk.Record{Size: 2}) }()
	go func() { defer wg.Done(); okErr = c.Create("vol00", "/ok", sharedisk.Record{Size: 3}) }()
	wg.Wait()
	if dupErr == nil {
		t.Fatal("duplicate create succeeded")
	}
	if okErr != nil {
		t.Fatalf("good create in the same batch failed: %v", okErr)
	}
}

// The explicit Batch API ships pre-grouped items in one round trip with
// index-aligned results.
func TestClientExplicitBatch(t *testing.T) {
	f := startFleet(t, 1)
	c, err := NewClient(Options{Authority: f.authority(), Timeout: 5 * time.Second, Budget: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateFileSet("vol00"); err != nil {
		t.Fatal(err)
	}
	results, err := c.Batch("vol00", []wire.BatchItem{
		{Op: wire.OpCreate, Path: "/a", Record: &sharedisk.Record{Size: 1}},
		{Op: wire.OpStat, Path: "/a"},
		{Op: wire.OpStat, Path: "/missing"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != "" {
		t.Fatalf("create: %s", results[0].Err)
	}
	if results[1].Err != "" || results[1].Record == nil || results[1].Record.Size != 1 {
		t.Fatalf("stat = %+v", results[1])
	}
	if results[2].Err == "" {
		t.Fatal("stat of missing path succeeded in batch")
	}
}
