package sdk

import (
	"bufio"
	"encoding/json"
	"net"
	"testing"
	"time"

	"anufs/internal/fleet"
	"anufs/internal/live"
	"anufs/internal/placement"
	"anufs/internal/sharedisk"
	"anufs/internal/wire"
)

// testDaemon is one in-process anufsd stand-in: its own disk, cluster,
// wire server, and fleet member — the same shape cmd/anufsd assembles.
type testDaemon struct {
	id     int
	addr   string
	disk   *sharedisk.Store
	clus   *live.Cluster
	srv    *wire.Server
	member *fleet.Member
}

// testFleet wires n daemons together; daemon 0 hosts the authority.
type testFleet struct {
	auth    *fleet.Authority
	daemons []*testDaemon
}

func testWireDial(addr string) (*wire.Client, error) {
	c, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	c.SetTimeout(5 * time.Second)
	return c, nil
}

// startFleet launches n single-server daemons over loopback, all at speed
// 1, with background tuning disabled — file sets only move when the
// authority moves them.
func startFleet(t testing.TB, n int) *testFleet {
	t.Helper()
	f := &testFleet{}
	infos := make([]placement.DaemonInfo, n)
	for i := 0; i < n; i++ {
		d := &testDaemon{id: i, disk: sharedisk.NewStore(0)}
		cfg := live.DefaultConfig()
		cfg.Window = time.Hour
		cfg.OpCost = 0
		cfg.RetryBudget = 200 * time.Millisecond
		clus, err := live.NewCluster(cfg, d.disk, map[int]float64{0: 1})
		if err != nil {
			t.Fatal(err)
		}
		d.clus = clus
		d.srv = wire.NewServer(clus)
		addr, err := d.srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		d.addr = addr
		infos[i] = placement.DaemonInfo{ID: i, Addr: addr, Speed: 1}
		f.daemons = append(f.daemons, d)
	}
	auth, err := fleet.NewAuthority(fleet.AuthorityConfig{Daemons: infos, Dial: testWireDial})
	if err != nil {
		t.Fatal(err)
	}
	f.auth = auth
	for _, d := range f.daemons {
		mc := fleet.MemberConfig{
			ID:           d.id,
			Cluster:      d.clus,
			Disk:         d.disk,
			DrainTimeout: 2 * time.Second,
			PollInterval: 20 * time.Millisecond,
			Dial:         testWireDial,
		}
		if d.id == 0 {
			mc.Authority = auth
		} else {
			mc.AuthorityAddr = f.daemons[0].addr
		}
		m, err := fleet.NewMember(mc, auth.Map())
		if err != nil {
			t.Fatal(err)
		}
		d.member = m
		d.srv.SetFleet(m)
		m.Start()
	}
	t.Cleanup(func() {
		for _, d := range f.daemons {
			d.member.Stop()
			d.srv.Close()
			d.clus.Stop()
		}
	})
	return f
}

// authority returns the fleet's authority wire address (daemon 0).
func (f *testFleet) authority() string { return f.daemons[0].addr }

// startGateway runs one gateway over the fleet and returns it with its
// listen address.
func startGateway(t testing.TB, f *testFleet, peers ...string) (*Gateway, string) {
	t.Helper()
	gw, err := NewGateway(GatewayConfig{
		Authority: f.authority(),
		Peers:     peers,
		Budget:    5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		gw.Close()
		t.Fatal(err)
	}
	go gw.ServeListener(ln)
	t.Cleanup(func() {
		ln.Close()
		gw.Close()
	})
	return gw, ln.Addr().String()
}

// startLineOnlyServer is a pre-tagged-protocol server stand-in: it speaks
// only the line protocol and answers OpHello the way an old daemon would —
// with an error. Every other request gets an empty OK response.
func startLineOnlyServer(t testing.TB) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				dec := json.NewDecoder(bufio.NewReader(conn))
				enc := json.NewEncoder(conn)
				for {
					var req wire.Request
					if err := dec.Decode(&req); err != nil {
						return
					}
					resp := wire.Response{ID: req.ID}
					if req.Op == wire.OpHello {
						resp.Err = `wire: unknown op "hello"`
					}
					if enc.Encode(resp) != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// startSilentTaggedServer accepts the hello upgrade and then swallows
// every frame — for timeout and close-with-pending tests.
func startSilentTaggedServer(t testing.TB) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				line, err := br.ReadBytes('\n')
				if err != nil {
					return
				}
				var req wire.Request
				if json.Unmarshal(line, &req) != nil || req.Op != wire.OpHello {
					return
				}
				enc := json.NewEncoder(conn)
				if enc.Encode(wire.Response{ID: req.ID, Proto: wire.TaggedProtoV1}) != nil {
					return
				}
				fr := wire.NewFrameReader(br)
				for {
					if _, _, _, err := fr.ReadFrame(); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}
