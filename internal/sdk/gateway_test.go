package sdk

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anufs/internal/fleet"
	"anufs/internal/sharedisk"
	"anufs/internal/wire"
)

// TestGatewayRoutesOps is the routed-op integration test: one plain
// line-mode wire.Client against a gateway exercises the full op surface —
// file-set data ops, mounts, global-path resolution, and lock sessions —
// across a 3-daemon fleet, without ever learning the cluster map.
func TestGatewayRoutesOps(t *testing.T) {
	f := startFleet(t, 3)
	_, addr := startGateway(t, f)
	c, err := testWireDial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Data ops route to whichever daemon owns each file set.
	for i := 0; i < 3; i++ {
		fs := fmt.Sprintf("vol%02d", i)
		if err := c.CreateFileSet(fs); err != nil {
			t.Fatal(err)
		}
		if err := c.Create(fs, "/a", sharedisk.Record{Size: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
		rec, err := c.Stat(fs, "/a")
		if err != nil || rec.Size != int64(i+1) {
			t.Fatalf("%s stat = %+v, %v", fs, rec, err)
		}
	}

	// Namespace: mounts broadcast so any daemon resolves them; global-path
	// ops resolve then route.
	if err := c.Mount("/mnt/v1", "vol01"); err != nil {
		t.Fatal(err)
	}
	fs, rel, err := c.Resolve("/mnt/v1/x")
	if err != nil || fs != "vol01" || rel != "/x" {
		t.Fatalf("resolve = %q %q %v", fs, rel, err)
	}
	if err := c.PCreate("/mnt/v1/x", sharedisk.Record{Size: 9}); err != nil {
		t.Fatal(err)
	}
	rec, err := c.PStat("/mnt/v1/x")
	if err != nil || rec.Size != 9 {
		t.Fatalf("pstat = %+v, %v", rec, err)
	}
	if err := c.PRemove("/mnt/v1/x"); err != nil {
		t.Fatal(err)
	}
	if err := c.Unmount("/mnt/v1"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Resolve("/mnt/v1/x"); err == nil {
		t.Fatal("resolve succeeded after unmount")
	}

	// Lock sessions: gateway-minted sessions map to per-daemon sessions,
	// and exclusive locks conflict across clients on the same gateway.
	s1, err := c.Register()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := testWireDial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	s2, err := c2.Register()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Lock(s1, "vol00", "/a", true); err != nil {
		t.Fatal(err)
	}
	if err := c2.Lock(s2, "vol00", "/a", true); err == nil || !strings.Contains(err.Error(), "conflict") {
		t.Fatalf("conflicting lock = %v, want a conflict", err)
	}
	if err := c.Renew(s1); err != nil {
		t.Fatal(err)
	}
	if err := c.Unlock(s1, "vol00", "/a"); err != nil {
		t.Fatal(err)
	}
	if err := c2.Lock(s2, "vol00", "/a", true); err != nil {
		t.Fatalf("lock after unlock: %v", err)
	}
	// A session the gateway never minted is rejected.
	if err := c.Lock(99999, "vol00", "/a", false); err == nil {
		t.Fatal("lock under an unknown session succeeded")
	}

	// Ops with nothing to route by are turned away with a clear error.
	if _, err := c.Stats(); err == nil || !strings.Contains(err.Error(), "no file set") {
		t.Fatalf("unroutable op = %v", err)
	}

	// The tagged protocol upgrades end to end: a pipelined sdk.Conn speaks
	// to the gateway exactly as it would to a daemon.
	tc, err := Dial(addr, Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	if !tc.Tagged() {
		t.Fatal("gateway did not accept the tagged upgrade")
	}
	resp, err := tc.Call(wire.Request{Op: wire.OpStat, FileSet: "vol02", Path: "/a"})
	if err != nil || resp.Record == nil || resp.Record.Size != 3 {
		t.Fatalf("tagged stat via gateway = %+v, %v", resp, err)
	}
}

// TestTwoGatewaysRebalanceUnderLoad is the scale-out acceptance test: two
// peer-linked gateways front a 3-daemon fleet while writers hammer both
// and the authority churns ownership (assigns and a rebalance routed
// through the gateways themselves). Every acked write must survive, both
// gateways must converge on the final epoch, and plain old clients keep
// working throughout.
func TestTwoGatewaysRebalanceUnderLoad(t *testing.T) {
	f := startFleet(t, 3)
	gw1, addr1 := startGateway(t, f)
	gw2, addr2 := startGateway(t, f, addr1)

	admin, err := testWireDial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	fileSets := []string{"vol00", "vol01", "vol02", "vol03"}
	for _, fs := range fileSets {
		if err := admin.CreateFileSet(fs); err != nil {
			t.Fatal(err)
		}
	}

	// Writers: half against each gateway, each recording the paths whose
	// creates were acked.
	const writers = 6
	var (
		wg    sync.WaitGroup
		stop  atomic.Bool
		acked [writers][]string
	)
	addrs := []string{addr1, addr2}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wc, err := testWireDial(addrs[w%2])
			if err != nil {
				return
			}
			defer wc.Close()
			fs := fileSets[w%len(fileSets)]
			for i := 0; !stop.Load(); i++ {
				path := fmt.Sprintf("/w%d-%04d", w, i)
				if wc.Create(fs, path, sharedisk.Record{Size: 1}) == nil {
					acked[w] = append(acked[w], fs+path)
				}
			}
		}(w)
	}

	// Ownership churn through the gateways: move every file set, then
	// rebalance, then move some back — each epoch bump invalidates the
	// gateways' shared map caches mid-write.
	for round := 0; round < 2; round++ {
		for i, fs := range fileSets {
			if _, err := admin.Assign(fs, (i+round+1)%3); err != nil {
				t.Fatal(err)
			}
			time.Sleep(30 * time.Millisecond)
		}
	}
	if _, err := admin.Rebalance(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	// Zero acked-write loss: every acked path stats back through both
	// gateways.
	total := 0
	for _, gwAddr := range addrs {
		rc, err := testWireDial(gwAddr)
		if err != nil {
			t.Fatal(err)
		}
		for w := range acked {
			for _, full := range acked[w] {
				fs, path, _ := strings.Cut(full, "/")
				if _, err := rc.Stat(fs, "/"+path); err != nil {
					rc.Close()
					t.Fatalf("acked write %s lost (via %s): %v", full, gwAddr, err)
				}
			}
		}
		rc.Close()
	}
	for w := range acked {
		total += len(acked[w])
	}
	if total == 0 {
		t.Fatal("no write was ever acked: the churn starved the writers")
	}
	t.Logf("%d acked writes survived the churn", total)

	// Epoch convergence: both gateways' cached maps reach the authority's
	// epoch, and a client asking either gateway sees it.
	want := f.auth.Epoch()
	for i, gw := range []*Gateway{gw1, gw2} {
		cm, err := gw.Router().Refresh()
		if err != nil {
			t.Fatalf("gateway %d refresh: %v", i+1, err)
		}
		if cm.Epoch != want {
			t.Fatalf("gateway %d epoch = %d, want %d", i+1, cm.Epoch, want)
		}
	}
	for _, gwAddr := range addrs {
		ec, err := testWireDial(gwAddr)
		if err != nil {
			t.Fatal(err)
		}
		epoch, err := ec.MapEpoch()
		ec.Close()
		if err != nil || epoch != want {
			t.Fatalf("map epoch via %s = %d, %v; want %d", gwAddr, epoch, err, want)
		}
	}
}

// A gateway whose peer holds a fresher map learns the epoch from the peer
// instead of the authority — the cache-sharing that makes the tier scale.
func TestGatewayPeersShareMaps(t *testing.T) {
	f := startFleet(t, 2)
	gw1, addr1 := startGateway(t, f)
	gw2, _ := startGateway(t, f, addr1)

	c, err := testWireDial(addr1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateFileSet("vol00"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Assign("vol00", 1); err != nil {
		t.Fatal(err)
	}
	// gw1 knows the new epoch (it routed the assign); gw2 refreshes
	// peer-first and should pick it up from gw1.
	want := f.auth.Epoch()
	if cm, err := gw1.Router().Refresh(); err != nil || cm.Epoch != want {
		t.Fatalf("gw1 epoch = %v, %v; want %d", cm, err, want)
	}
	gw2.Router().Maps().Invalidate(want)
	cm, err := gw2.Router().Refresh()
	if err != nil || cm.Epoch != want {
		t.Fatalf("gw2 epoch = %v, %v; want %d", cm, err, want)
	}
	if hits := gw2.Router().Counters().Get(fleet.CtrMapPeerHits); hits == 0 {
		t.Fatal("gw2 refreshed without ever hitting its peer's cache")
	}
}
