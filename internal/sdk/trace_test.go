package sdk

import (
	"net"
	"sync"
	"testing"
	"time"

	"anufs/internal/obs"
	"anufs/internal/sharedisk"
	"anufs/internal/wire"
)

// TestClientTracePropagation: a client built with an obs registry mints a
// trace per op, records the edge "sdk-call" span locally, and carries the
// context to the daemon — whose "wire" span lands under the same trace,
// parented by the client's span ID.
func TestClientTracePropagation(t *testing.T) {
	f := startFleet(t, 1)
	reg := obs.New()
	reg.SetNode("client")
	c, err := NewClient(Options{Authority: f.authority(), Timeout: 5 * time.Second, Budget: 5 * time.Second, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateFileSet("vol00"); err != nil {
		t.Fatal(err)
	}
	if err := c.Create("vol00", "/a", sharedisk.Record{Size: 1}); err != nil {
		t.Fatal(err)
	}
	trace := c.LastTrace()
	if trace == 0 {
		t.Fatal("traced client minted no trace ID")
	}

	var edge obs.Span
	for _, s := range reg.Spans.ByTrace(trace) {
		if s.Name == "sdk-call" {
			edge = s
		}
	}
	if edge.ID == 0 || edge.Op != string(wire.OpCreate) || edge.Node != "client" {
		t.Fatalf("sdk-call span = %+v", edge)
	}

	wc, err := wire.Dial(f.daemons[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	spans, _, now, err := wc.TracePull(trace)
	if err != nil {
		t.Fatal(err)
	}
	if now == 0 {
		t.Fatal("trace-pull returned no clock sample")
	}
	var wireSpan obs.Span
	for _, s := range spans {
		if s.Name == "wire" {
			wireSpan = s
		}
	}
	if wireSpan.Trace != trace || wireSpan.Op != string(wire.OpCreate) {
		t.Fatalf("daemon wire span = %+v (want trace %d)", wireSpan, trace)
	}
	if wireSpan.Parent != edge.ID {
		t.Fatalf("wire span parent = %d, want the sdk-call span ID %d", wireSpan.Parent, edge.ID)
	}
}

// TestClientBatchTraceFolding: with batching on, each folded op keeps its
// own trace, the batch request adopts the first item's trace, and the
// daemon records batch-fold link spans tying sibling traces to the batch
// trace — so any one op's trace leads the stitcher to the whole group.
func TestClientBatchTraceFolding(t *testing.T) {
	f := startFleet(t, 1)
	reg := obs.New()
	c, err := NewClient(Options{
		Authority:  f.authority(),
		Timeout:    5 * time.Second,
		Budget:     5 * time.Second,
		BatchDelay: 20 * time.Millisecond,
		MaxBatch:   64,
		Obs:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateFileSet("vol00"); err != nil {
		t.Fatal(err)
	}

	const writers = 16
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.Create("vol00", "/p"+string(rune('a'+i)), sharedisk.Record{Size: 1})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}

	// The client recorded one sdk-call per op and at least one sdk-batch
	// ship; every sdk-call trace is distinct.
	var calls, batches int
	callTraces := map[uint64]bool{}
	var batchTrace uint64
	for _, s := range reg.Spans.Snapshot(0) {
		switch s.Name {
		case "sdk-call":
			calls++
			if s.Trace == 0 || callTraces[s.Trace] {
				t.Fatalf("sdk-call trace %d duplicated or zero", s.Trace)
			}
			callTraces[s.Trace] = true
		case "sdk-batch":
			batches++
			batchTrace = s.Trace
		}
	}
	if calls != writers || batches == 0 || batches >= writers {
		t.Fatalf("calls=%d batches=%d (want %d calls and 1..%d batches)", calls, batches, writers, writers-1)
	}
	if !callTraces[batchTrace] {
		t.Fatalf("batch trace %d is not one of the folded ops' traces (adoption broken)", batchTrace)
	}

	// The daemon linked the folded siblings: the batch trace carries a
	// batch-fold span whose Links name other ops' traces.
	wc, err := wire.Dial(f.daemons[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	spans, _, _, err := wc.TracePull(batchTrace)
	if err != nil {
		t.Fatal(err)
	}
	linked := map[uint64]bool{}
	for _, s := range spans {
		if s.Name == "batch-fold" && s.Trace == batchTrace {
			for _, l := range s.Links {
				linked[l] = true
			}
		}
	}
	if len(linked) == 0 {
		t.Fatalf("no batch-fold links on the batch trace; daemon spans: %+v", spans)
	}
	for l := range linked {
		if !callTraces[l] {
			t.Fatalf("fold link %d is not a client op trace", l)
		}
	}
	// And the reverse direction: a sibling's own trace links back.
	for sib := range linked {
		sibSpans, _, _, err := wc.TracePull(sib)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, s := range sibSpans {
			if s.Name == "batch-fold" {
				for _, l := range s.Links {
					if l == batchTrace {
						found = true
					}
				}
			}
		}
		if !found {
			t.Fatalf("sibling trace %d has no fold span linking back to batch trace %d", sib, batchTrace)
		}
		break
	}
}

// TestGatewayTraceEdge: a plain wire client through a traced gateway gets
// a trace minted at the edge, learns it from resp.Trace, and both the
// gateway hop and the daemon hop answer trace-pull for it.
func TestGatewayTraceEdge(t *testing.T) {
	f := startFleet(t, 1)
	reg := obs.New()
	reg.SetNode("gw")
	gw, err := NewGateway(GatewayConfig{Authority: f.authority(), Budget: 5 * time.Second, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		gw.Close()
		t.Fatal(err)
	}
	go gw.ServeListener(ln)
	t.Cleanup(func() {
		ln.Close()
		gw.Close()
	})

	wc, err := wire.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	if err := wc.CreateFileSet("vol00"); err != nil {
		t.Fatal(err)
	}
	if err := wc.Create("vol00", "/a", sharedisk.Record{Size: 1}); err != nil {
		t.Fatal(err)
	}
	trace := wc.LastTrace()
	if trace == 0 {
		t.Fatal("gateway did not hand back the trace it minted")
	}

	gwSpans, node, _, err := wc.TracePull(trace)
	if err != nil {
		t.Fatal(err)
	}
	if node != "gw" {
		t.Fatalf("gateway trace-pull node = %q", node)
	}
	var edge obs.Span
	for _, s := range gwSpans {
		if s.Name == "gateway" {
			edge = s
		}
	}
	if edge.Trace != trace || edge.ID == 0 {
		t.Fatalf("gateway span = %+v", edge)
	}

	dc, err := wire.Dial(f.daemons[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()
	dSpans, _, _, err := dc.TracePull(trace)
	if err != nil {
		t.Fatal(err)
	}
	var wireSpan obs.Span
	for _, s := range dSpans {
		if s.Name == "wire" && s.Op == string(wire.OpCreate) {
			wireSpan = s
		}
	}
	if wireSpan.Trace != trace {
		t.Fatalf("daemon has no wire span for gateway trace %d: %+v", trace, dSpans)
	}
	if wireSpan.Parent != edge.ID {
		t.Fatalf("daemon wire span parent = %d, want gateway span ID %d", wireSpan.Parent, edge.ID)
	}

	// OpTrace against the gateway dumps its own edge spans, like a daemon
	// dumps its ring ("anufsctl -addr <gw> trace last" must work).
	dumped, err := wc.Trace(trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range dumped {
		if s.Name == "gateway" && s.Trace == trace {
			found = true
		}
	}
	if !found {
		t.Fatalf("gateway OpTrace dump misses its own edge span: %+v", dumped)
	}

	// A fileset-less Sync fans out to every daemon WITH the trace context:
	// the barrier's per-daemon checkpoints join the stitched timeline.
	if err := wc.Sync(); err != nil {
		t.Fatal(err)
	}
	syncTrace := wc.LastTrace()
	if syncTrace == 0 || syncTrace == trace {
		t.Fatalf("sync trace = %d (want a fresh edge-minted trace)", syncTrace)
	}
	dSpans, _, _, err = dc.TracePull(syncTrace)
	if err != nil {
		t.Fatal(err)
	}
	var syncSpan obs.Span
	for _, s := range dSpans {
		if s.Name == "wire" && s.Op == string(wire.OpSync) {
			syncSpan = s
		}
	}
	if syncSpan.Trace != syncTrace || syncSpan.Parent == 0 {
		t.Fatalf("fanned-out sync dropped trace context on the daemon: %+v", dSpans)
	}
}
