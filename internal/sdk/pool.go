package sdk

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"anufs/internal/obs"
	"anufs/internal/wire"
)

// Pool counter names (reported into Options' shared counter set).
const (
	// CtrPoolRedials counts slot dial attempts after the initial fill —
	// i.e. how often connections died and were re-established (or retried).
	CtrPoolRedials = "sdk_pool_redials"
	// CtrPoolHealthFailures counts health-loop pings that failed and
	// discarded a connection.
	CtrPoolHealthFailures = "sdk_pool_health_failures"
)

// Pool errors. errNoConn contains "sdk: no connection" on purpose: the
// fleet router treats it as transient and retries through a backoff.
var (
	errNoConn     = errors.New("sdk: no connection available")
	errPoolClosed = errors.New("sdk: pool closed")
)

// Pool is a fixed-size pool of pipelined connections to one address.
// Calls spread across the live connections by power-of-two-choices on
// in-flight depth; dead slots redial lazily with jittered backoff, and a
// background health loop pings the survivors. NewPool never fails — a
// pool to an unreachable address sits empty and errors calls until the
// address comes back. Implements fleet.Caller.
type Pool struct {
	addr string
	opts Options

	mu      sync.Mutex
	conns   []*Conn // nil = empty slot
	dialing []bool
	filled  []bool // slot has held a connection before (dials after it are redials)
	back    []*wire.Backoff
	next    []time.Time // earliest redial per slot
	closed  bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewPool builds a pool of opts.PoolSize connections to addr. No dial
// happens here; slots fill on first use.
func NewPool(addr string, opts Options) *Pool {
	opts = opts.withDefaults()
	p := &Pool{
		addr:    addr,
		opts:    opts,
		conns:   make([]*Conn, opts.PoolSize),
		dialing: make([]bool, opts.PoolSize),
		filled:  make([]bool, opts.PoolSize),
		back:    make([]*wire.Backoff, opts.PoolSize),
		next:    make([]time.Time, opts.PoolSize),
		stop:    make(chan struct{}),
	}
	for i := range p.back {
		p.back[i] = wire.NewBackoff(50*time.Millisecond, 5*time.Second)
	}
	if opts.Obs != nil {
		// Per-daemon pool health on /metrics: how many connections are up
		// and how deep the pipelines run, labeled by target address.
		lbl := fmt.Sprintf("daemon=%q", addr)
		opts.Obs.AddGauges(func() []obs.Gauge {
			return []obs.Gauge{
				{Name: "sdk_pool_live", Labels: lbl, Value: float64(p.Live())},
				{Name: "sdk_pool_inflight", Labels: lbl, Value: float64(p.InFlight())},
			}
		})
	}
	if opts.HealthInterval > 0 {
		p.wg.Add(1)
		go p.healthLoop()
	}
	return p
}

// count bumps a pool counter when the pool shares a client counter set.
func (p *Pool) count(name string) {
	if p.opts.counters != nil {
		p.opts.counters.Add(name, 1)
	}
}

// nth returns the k-th live connection (caller holds p.mu).
//
//anufs:hotpath
func (p *Pool) nth(k int) *Conn {
	for _, c := range p.conns {
		if c == nil {
			continue
		}
		if k == 0 {
			return c
		}
		k--
	}
	return nil
}

// pick chooses a connection for the next call (caller holds p.mu): an
// empty, redial-due slot is claimed first (the pool ramps to full size
// under load), otherwise power-of-two-choices — sample two live
// connections, take the shallower queue. P2C gives near-best-of-N load
// spread for the cost of two reads, and unlike round-robin it adapts when
// one connection's daemon stalls. Returns (nil, slot) when the caller
// should dial slot, (nil, -1) when nothing is usable yet.
//
//anufs:hotpath
func (p *Pool) pick(now time.Time) (*Conn, int) {
	live := 0
	for _, c := range p.conns {
		if c != nil {
			live++
		}
	}
	if live < len(p.conns) {
		for i, c := range p.conns {
			if c == nil && !p.dialing[i] && !now.Before(p.next[i]) {
				return nil, i
			}
		}
	}
	if live == 0 {
		return nil, -1
	}
	if live == 1 {
		return p.nth(0), -1
	}
	r1 := rand.Intn(live)
	r2 := rand.Intn(live - 1)
	if r2 >= r1 {
		r2++
	}
	c1, c2 := p.nth(r1), p.nth(r2)
	if c2.InFlight() < c1.InFlight() {
		return c2, -1
	}
	return c1, -1
}

// get returns a connection, dialing an empty slot when picking asks for
// one. A failed dial backs its slot off and falls through to whatever is
// live; a pool with nothing live and nothing due errors with errNoConn.
func (p *Pool) get() (*Conn, error) {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, errPoolClosed
		}
		c, slot := p.pick(time.Now())
		if c != nil {
			p.mu.Unlock()
			return c, nil
		}
		if slot < 0 {
			p.mu.Unlock()
			return nil, errNoConn
		}
		p.dialing[slot] = true
		p.mu.Unlock()
		if c := p.dialSlot(slot); c != nil {
			return c, nil
		}
		// The dial failed; loop once more over the live connections (the
		// slot is now backing off, so this cannot spin).
	}
}

// dialSlot fills one slot, outside the pool lock. On failure the slot
// backs off with jitter (wire.Backoff), so a dead daemon is not hammered
// by every caller at once.
func (p *Pool) dialSlot(slot int) *Conn {
	p.mu.Lock()
	if p.filled[slot] {
		p.mu.Unlock()
		p.count(CtrPoolRedials)
	} else {
		p.mu.Unlock()
	}
	c, err := Dial(p.addr, p.opts)
	if err == nil {
		c.SetTimeout(p.opts.Timeout)
	}
	p.mu.Lock()
	p.dialing[slot] = false
	if err != nil {
		p.next[slot] = time.Now().Add(p.back[slot].Next())
		p.mu.Unlock()
		return nil
	}
	if p.closed {
		p.mu.Unlock()
		c.Close()
		return nil
	}
	p.back[slot].Reset()
	p.conns[slot] = c
	p.filled[slot] = true
	p.mu.Unlock()
	return c
}

// discard drops a connection that errored at the transport level; its
// slot redials on next use.
func (p *Pool) discard(c *Conn) {
	p.mu.Lock()
	found := false
	for i, pc := range p.conns {
		if pc == c {
			p.conns[i] = nil
			found = true
			break
		}
	}
	p.mu.Unlock()
	if found {
		go c.Close()
	}
}

// Call sends one request over the least-loaded live connection.
// Transport-level failures discard the connection (the slot redials);
// the error is surfaced for the router's retry discipline.
func (p *Pool) Call(req wire.Request) (wire.Response, error) {
	c, err := p.get()
	if err != nil {
		return wire.Response{}, err
	}
	resp, err := c.Call(req)
	if err != nil {
		// Only connection-level failures poison the slot; wire.ErrTimedOut
		// does not — a slow server is not a dead socket.
		if errors.Is(err, errConnClosed) || errors.Is(err, wire.ErrConnClosed) || errors.Is(err, wire.ErrSendFailed) {
			p.discard(c)
		}
	}
	return resp, err
}

// Ping round-trips a no-op over one pooled connection.
func (p *Pool) Ping() error {
	_, err := p.Call(wire.Request{Op: wire.OpPing})
	return err
}

// SetTimeout overrides the per-call deadline on current and future
// connections.
func (p *Pool) SetTimeout(d time.Duration) {
	p.mu.Lock()
	p.opts.Timeout = d
	conns := make([]*Conn, 0, len(p.conns))
	for _, c := range p.conns {
		if c != nil {
			conns = append(conns, c)
		}
	}
	p.mu.Unlock()
	for _, c := range conns {
		c.SetTimeout(d)
	}
}

// InFlight sums the in-flight calls across the pool's connections.
func (p *Pool) InFlight() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int64
	for _, c := range p.conns {
		if c != nil {
			n += c.InFlight()
		}
	}
	return n
}

// Live reports how many connections are currently established.
func (p *Pool) Live() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, c := range p.conns {
		if c != nil {
			n++
		}
	}
	return n
}

// healthLoop pings every live connection each HealthInterval and discards
// the ones that fail — a wedged connection is noticed here instead of by
// the unlucky caller whose request would otherwise ride it into a
// timeout.
func (p *Pool) healthLoop() {
	defer p.wg.Done()
	ticker := time.NewTicker(p.opts.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			p.mu.Lock()
			conns := make([]*Conn, 0, len(p.conns))
			for _, c := range p.conns {
				if c != nil {
					conns = append(conns, c)
				}
			}
			p.mu.Unlock()
			for _, c := range conns {
				if c.Ping() != nil {
					p.count(CtrPoolHealthFailures)
					p.discard(c)
				}
			}
		}
	}
}

// Close tears the pool down; further calls fail. Idempotent.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := p.conns
	p.conns = make([]*Conn, len(conns))
	close(p.stop)
	p.mu.Unlock()
	p.wg.Wait()
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
	return nil
}
