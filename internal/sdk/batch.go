package sdk

import (
	"errors"
	"sync"
	"time"

	"anufs/internal/metrics"
	"anufs/internal/obs"
	"anufs/internal/wire"
)

// Batcher counter names.
const (
	CtrBatchesSent = "sdk_batches_sent"
	CtrBatchedOps  = "sdk_batched_ops"
)

var errBatcherClosed = errors.New("sdk: client closed")

// batcher coalesces small writes per file set: the first write in a
// window arms a timer, later writes for the same file set pile on, and
// the batch goes out as one OpBatch when the window expires or the batch
// fills — one round trip, one owner-queue wait, and (durable) one journal
// group commit for the lot. Each caller still blocks until its own item's
// outcome arrives, so the API stays synchronous per op.
type batcher struct {
	send     func(fileSet string, durable bool, items []wire.BatchItem) ([]wire.BatchResult, error)
	hist     *obs.Histogram // batch sizes; buckets read as counts
	counters *metrics.CounterSet
	max      int
	delay    time.Duration
	durable  bool

	mu      sync.Mutex
	pending map[string]*pendingBatch
	closed  bool
}

type pendingBatch struct {
	items []wire.BatchItem
	done  []chan error
	timer *time.Timer
}

func newBatcher(send func(string, bool, []wire.BatchItem) ([]wire.BatchResult, error),
	opts Options, counters *metrics.CounterSet) *batcher {
	b := &batcher{
		send:     send,
		counters: counters,
		max:      opts.MaxBatch,
		delay:    opts.BatchDelay,
		durable:  opts.Durable,
		pending:  map[string]*pendingBatch{},
	}
	if opts.Obs != nil {
		b.hist = opts.Obs.Hist.Get("sdk_batch_items", "")
	}
	return b
}

// add queues one item for fileSet and blocks until its batch is acked.
func (b *batcher) add(fileSet string, item wire.BatchItem) error {
	ch := make(chan error, 1)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return errBatcherClosed
	}
	pb := b.pending[fileSet]
	if pb == nil {
		pb = &pendingBatch{}
		b.pending[fileSet] = pb
		pb.timer = time.AfterFunc(b.delay, func() { b.flushSet(fileSet) })
	}
	pb.items = append(pb.items, item)
	pb.done = append(pb.done, ch)
	var full *pendingBatch
	if len(pb.items) >= b.max {
		delete(b.pending, fileSet)
		pb.timer.Stop()
		full = pb
	}
	b.mu.Unlock()
	if full != nil {
		// The filling caller ships the batch itself — no handoff latency
		// at saturation, when batches fill faster than the delay.
		b.ship(fileSet, full)
	}
	return <-ch
}

// flushSet detaches and ships fileSet's pending batch (timer expiry, or a
// read that needs its writes visible).
func (b *batcher) flushSet(fileSet string) {
	b.mu.Lock()
	pb := b.pending[fileSet]
	delete(b.pending, fileSet)
	b.mu.Unlock()
	if pb != nil {
		pb.timer.Stop()
		b.ship(fileSet, pb)
	}
}

// Flush ships every pending batch and returns when all are acked.
func (b *batcher) Flush() {
	b.mu.Lock()
	detached := b.pending
	b.pending = map[string]*pendingBatch{}
	b.mu.Unlock()
	for fs, pb := range detached {
		pb.timer.Stop()
		b.ship(fs, pb)
	}
}

// Close flushes and refuses further adds.
func (b *batcher) Close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.Flush()
}

// ship sends one batch and delivers per-item outcomes to the waiters.
func (b *batcher) ship(fileSet string, pb *pendingBatch) {
	if b.hist != nil {
		// Size histogram buckets read as item counts, not seconds.
		b.hist.Observe(time.Duration(len(pb.items)))
	}
	b.counters.Add(CtrBatchesSent, 1)
	b.counters.Add(CtrBatchedOps, int64(len(pb.items)))
	results, err := b.send(fileSet, b.durable, pb.items)
	for i, ch := range pb.done {
		switch {
		case err != nil:
			ch <- err
		case results[i].Err != "":
			ch <- errors.New(results[i].Err)
		default:
			ch <- nil
		}
	}
}
