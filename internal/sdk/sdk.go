// Package sdk is the high-throughput client layer over the wire protocol:
// pipelined connections (tagged frames, many in-flight requests per
// connection, out-of-order completion), per-daemon connection pools with
// health checks and power-of-two-choices load spreading, and client-side
// op batching that folds small metadata writes for the same owner into
// single journal group commits.
//
// The layering mirrors the paper's client/server split: clients talk to
// whichever daemon owns a file set (internal/fleet routes by the cluster
// map) and the sdk makes that path saturate heterogeneous daemons instead
// of serializing on one round trip at a time. Every connection starts in
// the plain line protocol and upgrades via OpHello, so an sdk client
// against an old server — or an old client against a new server — keeps
// working unchanged, just without pipelining.
//
// Gateway (gateway.go) is the same machinery turned server-side: a
// stateless wire endpoint that fronts the fleet, scaled horizontally by
// running N of them with peer-shared cluster-map caches.
package sdk

import (
	"time"

	"anufs/internal/metrics"
	"anufs/internal/obs"
)

// Defaults for Options' zero values.
const (
	// DefaultPoolSize is connections per target daemon.
	DefaultPoolSize = 4
	// DefaultMaxBatch caps one coalesced batch (well under
	// wire.MaxBatchItems).
	DefaultMaxBatch = 64
	// DefaultHealthInterval is the pool's ping cadence.
	DefaultHealthInterval = 2 * time.Second
)

// Options parameterizes Dial, NewPool, and NewClient. The zero value of
// every field except Authority is usable.
type Options struct {
	// Authority is the fleet authority's wire address (NewClient only).
	Authority string
	// Peers are additional cluster-map sources tried before the authority
	// — typically the other gateways of a tier.
	Peers []string
	// Timeout bounds each call's wait for its response: 0 means
	// wire.DefaultCallTimeout, negative disables the deadline.
	Timeout time.Duration
	// PoolSize is connections per target address (default DefaultPoolSize).
	PoolSize int
	// MaxBatch caps one coalesced batch (default DefaultMaxBatch).
	MaxBatch int
	// BatchDelay is how long a small write may wait for company before its
	// batch is sent; 0 disables client-side batching.
	BatchDelay time.Duration
	// Durable asks the server to checkpoint batched writes before acking —
	// the whole batch rides one journal group commit.
	Durable bool
	// HealthInterval is the pool's ping cadence (default
	// DefaultHealthInterval; negative disables health checks).
	HealthInterval time.Duration
	// Budget bounds one routed operation end to end (default
	// fleet.DefaultRouteBudget).
	Budget time.Duration
	// Obs receives sdk counters, gauges, and histograms; nil disables.
	Obs *obs.Registry

	// counters is the shared counter set pools report redials and health
	// failures into — set by NewClient so every pool of one client sums
	// into the same series instead of colliding per-pool snapshots.
	counters *metrics.CounterSet
}

// withDefaults fills the zero values.
func (o Options) withDefaults() Options {
	if o.PoolSize <= 0 {
		o.PoolSize = DefaultPoolSize
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	if o.HealthInterval == 0 {
		o.HealthInterval = DefaultHealthInterval
	}
	return o
}
