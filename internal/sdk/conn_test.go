package sdk

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"anufs/internal/sharedisk"
	"anufs/internal/wire"
)

// Against a current server, Dial upgrades to the tagged protocol and many
// concurrent calls share one connection.
func TestDialUpgradesAndPipelines(t *testing.T) {
	f := startFleet(t, 1)
	c, err := Dial(f.daemons[0].addr, Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Tagged() {
		t.Fatal("connection did not upgrade to the tagged protocol")
	}
	if _, err := f.auth.Assign("fs00", 0); err != nil {
		t.Fatal(err)
	}
	// The member adopts the assignment on its next map poll; retry briefly.
	var cerr error
	for i := 0; i < 100; i++ {
		if _, cerr = c.Call(wire.Request{Op: wire.OpCreateFileSet, FileSet: "fs00"}); cerr == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if cerr != nil {
		t.Fatal(cerr)
	}
	const workers = 16
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := fmt.Sprintf("/f%02d", i)
			_, err := c.Call(wire.Request{Op: wire.OpCreate, FileSet: "fs00", Path: path,
				Record: &sharedisk.Record{Size: int64(i)}})
			if err == nil {
				var resp wire.Response
				resp, err = c.Call(wire.Request{Op: wire.OpStat, FileSet: "fs00", Path: path})
				if err == nil && (resp.Record == nil || resp.Record.Size != int64(i)) {
					err = fmt.Errorf("stat record %v, want size %d", resp.Record, i)
				}
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if c.InFlight() != 0 {
		t.Fatalf("in-flight count %d after all calls returned", c.InFlight())
	}
}

// Against an old server that rejects OpHello, Dial transparently degrades
// to a line-mode client with the same API.
func TestDialFallsBackToLineMode(t *testing.T) {
	addr := startLineOnlyServer(t)
	c, err := Dial(addr, Options{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Tagged() {
		t.Fatal("connection claims tagged against a line-only server")
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("line-mode fallback ping: %v", err)
	}
}

// A call whose response never arrives times out with the standard wire
// timeout message (the router treats it as transient).
func TestConnCallTimesOut(t *testing.T) {
	addr := startSilentTaggedServer(t)
	c, err := Dial(addr, Options{Timeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Tagged() {
		t.Fatal("silent stub did not upgrade")
	}
	_, err = c.Call(wire.Request{Op: wire.OpPing})
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v, want a timeout", err)
	}
}

// Closing the connection fails every pending call with the closed error
// instead of leaving it hung.
func TestConnCloseFailsPending(t *testing.T) {
	addr := startSilentTaggedServer(t)
	c, err := Dial(addr, Options{Timeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(wire.Request{Op: wire.OpPing})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the call get pending
	c.Close()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "connection closed") {
			t.Fatalf("pending call err = %v, want connection closed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call still hung after Close")
	}
}

// A server-side error string comes back as the same typed errors the
// line-mode client produces — the router's vocabulary is shared.
func TestConnErrorVocabulary(t *testing.T) {
	f := startFleet(t, 1)
	c, err := Dial(f.daemons[0].addr, Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call(wire.Request{Op: wire.OpStat, FileSet: "nope", Path: "/x"})
	if err == nil {
		t.Fatal("stat of unknown file set succeeded")
	}
}
