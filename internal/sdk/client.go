package sdk

import (
	"fmt"
	"sync/atomic"

	"anufs/internal/fleet"
	"anufs/internal/metrics"
	"anufs/internal/obs"
	"anufs/internal/sharedisk"
	"anufs/internal/wire"
)

// Client is the fleet-aware sdk client: it routes every operation to the
// owning daemon through a fleet.Router whose transport is pipelined
// connection pools, and (when Options.BatchDelay is set) coalesces small
// writes per file set into single batched round trips. Safe for
// concurrent use; that concurrency is exactly what fills the pipelines
// and batches.
type Client struct {
	opts     Options
	router   *fleet.Router
	batch    *batcher // nil when batching is disabled
	counters *metrics.CounterSet
	inflight atomic.Int64
}

// NewClient connects to the fleet named by opts.Authority. Every target
// daemon gets a connection pool of opts.PoolSize pipelined connections;
// opts.Peers are consulted for cluster maps before the authority.
func NewClient(opts Options) (*Client, error) {
	if opts.Authority == "" {
		return nil, fmt.Errorf("sdk: client needs an authority address")
	}
	opts = opts.withDefaults()
	c := &Client{opts: opts, counters: metrics.NewCounterSet()}
	dial := func(addr string) (fleet.Caller, error) {
		p := NewPool(addr, opts)
		p.SetTimeout(opts.Timeout)
		return p, nil
	}
	router, err := fleet.NewRouter(fleet.RouterConfig{
		AuthorityAddr: opts.Authority,
		MapSources:    opts.Peers,
		Budget:        opts.Budget,
		Obs:           opts.Obs,
		DialCaller:    dial,
	})
	if err != nil {
		return nil, err
	}
	c.router = router
	if opts.BatchDelay > 0 {
		c.batch = newBatcher(router.Batch, opts, c.counters)
	}
	if opts.Obs != nil {
		opts.Obs.AddCounters(c.counters.Snapshot)
		opts.Obs.AddGauges(func() []obs.Gauge {
			return []obs.Gauge{{Name: "sdk_inflight_requests", Value: float64(c.inflight.Load())}}
		})
	}
	return c, nil
}

// Router exposes the underlying fleet router (map cache, raw Do).
func (c *Client) Router() *fleet.Router { return c.router }

// track wraps one client-level operation for the in-flight gauge.
func (c *Client) track() func() {
	c.inflight.Add(1)
	return func() { c.inflight.Add(-1) }
}

// CreateFileSet creates a file set fleet-wide (authority placement, then
// creation on the owner).
func (c *Client) CreateFileSet(fileSet string) error {
	defer c.track()()
	return c.router.CreateFileSet(fileSet)
}

// Create adds a metadata record. With batching enabled it may coalesce
// with other writes to the same file set; the call still blocks until
// this record's outcome is known.
func (c *Client) Create(fileSet, path string, rec sharedisk.Record) error {
	defer c.track()()
	if c.batch != nil {
		return c.batch.add(fileSet, wire.BatchItem{Op: wire.OpCreate, Path: path, Record: &rec})
	}
	return c.router.Create(fileSet, path, rec)
}

// Update overwrites a metadata record (batched like Create).
func (c *Client) Update(fileSet, path string, rec sharedisk.Record) error {
	defer c.track()()
	if c.batch != nil {
		return c.batch.add(fileSet, wire.BatchItem{Op: wire.OpUpdate, Path: path, Record: &rec})
	}
	return c.router.Update(fileSet, path, rec)
}

// Remove deletes a metadata record (batched like Create).
func (c *Client) Remove(fileSet, path string) error {
	defer c.track()()
	if c.batch != nil {
		return c.batch.add(fileSet, wire.BatchItem{Op: wire.OpRemove, Path: path})
	}
	return c.router.Remove(fileSet, path)
}

// Stat reads a metadata record. Pending batched writes to the file set
// are flushed first, so a client reads its own acked-or-queued writes.
func (c *Client) Stat(fileSet, path string) (sharedisk.Record, error) {
	defer c.track()()
	if c.batch != nil {
		c.batch.flushSet(fileSet)
	}
	return c.router.Stat(fileSet, path)
}

// List returns paths under a prefix (flushes the file set's pending
// writes first, like Stat).
func (c *Client) List(fileSet, prefix string) ([]string, error) {
	defer c.track()()
	if c.batch != nil {
		c.batch.flushSet(fileSet)
	}
	return c.router.List(fileSet, prefix)
}

// Batch applies pre-grouped items against one file set in a single round
// trip, bypassing the delay-based coalescing — for callers that already
// hold a batch in hand.
func (c *Client) Batch(fileSet string, items []wire.BatchItem) ([]wire.BatchResult, error) {
	defer c.track()()
	return c.router.Batch(fileSet, c.opts.Durable, items)
}

// Flush ships every pending batched write and returns when all are
// acked.
func (c *Client) Flush() {
	if c.batch != nil {
		c.batch.Flush()
	}
}

// Sync flushes pending batches, then checkpoints every daemon — the
// fleet-wide durability barrier.
func (c *Client) Sync() error {
	defer c.track()()
	c.Flush()
	return c.router.Sync()
}

// Close flushes pending writes and tears down every pool.
func (c *Client) Close() error {
	if c.batch != nil {
		c.batch.Close()
	}
	c.router.Close()
	return nil
}
