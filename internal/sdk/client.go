package sdk

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"anufs/internal/fleet"
	"anufs/internal/metrics"
	"anufs/internal/obs"
	"anufs/internal/sharedisk"
	"anufs/internal/volume"
	"anufs/internal/wire"
)

// Client is the fleet-aware sdk client: it routes every operation to the
// owning daemon through a fleet.Router whose transport is pipelined
// connection pools, and (when Options.BatchDelay is set) coalesces small
// writes per file set into single batched round trips. Safe for
// concurrent use; that concurrency is exactly what fills the pipelines
// and batches.
type Client struct {
	opts      Options
	router    *fleet.Router
	batch     *batcher // nil when batching is disabled
	counters  *metrics.CounterSet
	inflight  atomic.Int64
	lastTrace atomic.Uint64
}

// NewClient connects to the fleet named by opts.Authority. Every target
// daemon gets a connection pool of opts.PoolSize pipelined connections;
// opts.Peers are consulted for cluster maps before the authority.
func NewClient(opts Options) (*Client, error) {
	if opts.Authority == "" {
		return nil, fmt.Errorf("sdk: client needs an authority address")
	}
	opts = opts.withDefaults()
	c := &Client{opts: opts, counters: metrics.NewCounterSet()}
	opts.counters = c.counters // pools sum their redial/health counters here
	dial := func(addr string) (fleet.Caller, error) {
		p := NewPool(addr, opts)
		p.SetTimeout(opts.Timeout)
		return p, nil
	}
	router, err := fleet.NewRouter(fleet.RouterConfig{
		AuthorityAddr: opts.Authority,
		MapSources:    opts.Peers,
		Budget:        opts.Budget,
		Obs:           opts.Obs,
		DialCaller:    dial,
	})
	if err != nil {
		return nil, err
	}
	c.router = router
	if opts.BatchDelay > 0 {
		c.batch = newBatcher(c.sendBatch, opts, c.counters)
	}
	if opts.Obs != nil {
		opts.Obs.AddCounters(c.counters.Snapshot)
		opts.Obs.AddGauges(func() []obs.Gauge {
			return []obs.Gauge{{Name: "sdk_inflight_requests", Value: float64(c.inflight.Load())}}
		})
	}
	return c, nil
}

// Router exposes the underlying fleet router (map cache, raw Do).
func (c *Client) Router() *fleet.Router { return c.router }

// LastTrace returns the trace ID minted for this client's most recent
// traced operation (0 without a registry): issue a write, then pull its
// fleet-wide timeline by this ID.
func (c *Client) LastTrace() uint64 { return c.lastTrace.Load() }

// track wraps one client-level operation for the in-flight gauge.
func (c *Client) track() func() {
	c.inflight.Add(1)
	return func() { c.inflight.Add(-1) }
}

// call routes one raw request, minting trace context at the edge when the
// client has a registry: the request carries a fresh trace ID plus the
// client span's ID as Parent, routing retries join the trace as
// route-retry spans, and the blocking client side is recorded as an
// "sdk-call" span. Without a registry this is a plain Forward.
func (c *Client) call(req wire.Request) (wire.Response, error) {
	reg := c.opts.Obs
	if reg == nil {
		return c.router.Forward(req)
	}
	req.Trace = reg.NextTraceID()
	req.Parent = reg.NextSpanID()
	c.lastTrace.Store(req.Trace)
	start := time.Now()
	resp, err := c.router.Forward(req)
	errStr := ""
	if err != nil {
		errStr = err.Error()
	}
	reg.Spans.Add(obs.Span{
		Trace: req.Trace, ID: req.Parent, Name: "sdk-call", Op: string(req.Op),
		FileSet: req.FileSet, Server: -1, Start: start, Dur: time.Since(start), Err: errStr,
	})
	return resp, err
}

// addBatched queues one write into the batcher under its own minted
// trace. The client span covers the full wait — coalescing delay included
// — and the server links sibling items' traces to the carrying batch's,
// so a folded op's timeline still reaches the journal commit it rode.
func (c *Client) addBatched(fileSet string, item wire.BatchItem) error {
	reg := c.opts.Obs
	if reg == nil {
		return c.batch.add(fileSet, item)
	}
	item.Trace = reg.NextTraceID()
	span := reg.NextSpanID()
	c.lastTrace.Store(item.Trace)
	start := time.Now()
	err := c.batch.add(fileSet, item)
	errStr := ""
	if err != nil {
		errStr = err.Error()
	}
	reg.Spans.Add(obs.Span{
		Trace: item.Trace, ID: span, Name: "sdk-call", Op: string(item.Op),
		FileSet: fileSet, Server: -1, Start: start, Dur: time.Since(start), Err: errStr,
	})
	return err
}

// sendBatch ships one coalesced batch through the router. The batch
// request adopts the first item's trace as its own (the owner journals the
// whole group commit under it), so at least one client op gets a complete
// end-to-end timeline; the remaining items are linked in by the server's
// batch-fold spans.
func (c *Client) sendBatch(fileSet string, durable bool, items []wire.BatchItem) ([]wire.BatchResult, error) {
	req := wire.Request{Op: wire.OpBatch, FileSet: fileSet, Durable: durable, Batch: items}
	reg := c.opts.Obs
	var start time.Time
	if reg != nil {
		for _, it := range items {
			if it.Trace != 0 {
				req.Trace = it.Trace
				break
			}
		}
		if req.Trace == 0 {
			req.Trace = reg.NextTraceID()
		}
		req.Parent = reg.NextSpanID()
		start = time.Now()
	}
	resp, err := c.router.Forward(req)
	if reg != nil {
		errStr := ""
		if err != nil {
			errStr = err.Error()
		}
		reg.Spans.Add(obs.Span{
			Trace: req.Trace, ID: req.Parent, Name: "sdk-batch", Op: string(wire.OpBatch),
			FileSet: fileSet, Server: -1, Start: start, Dur: time.Since(start), Err: errStr,
		})
	}
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(items) {
		return nil, fmt.Errorf("wire: batch of %d items got %d results", len(items), len(resp.Results))
	}
	return resp.Results, nil
}

// CreateFileSet creates a file set fleet-wide (authority placement, then
// creation on the owner).
func (c *Client) CreateFileSet(fileSet string) error {
	defer c.track()()
	return c.router.CreateFileSet(fileSet)
}

// Create adds a metadata record. With batching enabled it may coalesce
// with other writes to the same file set; the call still blocks until
// this record's outcome is known.
func (c *Client) Create(fileSet, path string, rec sharedisk.Record) error {
	defer c.track()()
	if c.batch != nil {
		return c.addBatched(fileSet, wire.BatchItem{Op: wire.OpCreate, Path: path, Record: &rec})
	}
	_, err := c.call(wire.Request{Op: wire.OpCreate, FileSet: fileSet, Path: path, Record: &rec})
	return err
}

// Update overwrites a metadata record (batched like Create).
func (c *Client) Update(fileSet, path string, rec sharedisk.Record) error {
	defer c.track()()
	if c.batch != nil {
		return c.addBatched(fileSet, wire.BatchItem{Op: wire.OpUpdate, Path: path, Record: &rec})
	}
	_, err := c.call(wire.Request{Op: wire.OpUpdate, FileSet: fileSet, Path: path, Record: &rec})
	return err
}

// Remove deletes a metadata record (batched like Create).
func (c *Client) Remove(fileSet, path string) error {
	defer c.track()()
	if c.batch != nil {
		return c.addBatched(fileSet, wire.BatchItem{Op: wire.OpRemove, Path: path})
	}
	_, err := c.call(wire.Request{Op: wire.OpRemove, FileSet: fileSet, Path: path})
	return err
}

// Stat reads a metadata record. Pending batched writes to the file set
// are flushed first, so a client reads its own acked-or-queued writes.
func (c *Client) Stat(fileSet, path string) (sharedisk.Record, error) {
	defer c.track()()
	if c.batch != nil {
		c.batch.flushSet(fileSet)
	}
	resp, err := c.call(wire.Request{Op: wire.OpStat, FileSet: fileSet, Path: path})
	if err != nil {
		return sharedisk.Record{}, err
	}
	if resp.Record == nil {
		return sharedisk.Record{}, errors.New("wire: stat returned no record")
	}
	return *resp.Record, nil
}

// List returns paths under a prefix (flushes the file set's pending
// writes first, like Stat).
func (c *Client) List(fileSet, prefix string) ([]string, error) {
	defer c.track()()
	if c.batch != nil {
		c.batch.flushSet(fileSet)
	}
	resp, err := c.call(wire.Request{Op: wire.OpList, FileSet: fileSet, Path: prefix})
	if err != nil {
		return nil, err
	}
	return resp.Paths, nil
}

// Batch applies pre-grouped items against one file set in a single round
// trip, bypassing the delay-based coalescing — for callers that already
// hold a batch in hand.
func (c *Client) Batch(fileSet string, items []wire.BatchItem) ([]wire.BatchResult, error) {
	defer c.track()()
	resp, err := c.call(wire.Request{Op: wire.OpBatch, FileSet: fileSet, Durable: c.opts.Durable, Batch: items})
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(items) {
		return nil, fmt.Errorf("wire: batch of %d items got %d results", len(items), len(resp.Results))
	}
	return resp.Results, nil
}

// --- volume administration ------------------------------------------------

// Volume ops are authority-only; the router targets the daemon the current
// map advertises, so they keep working across a standby promotion.

// VolumeCreate registers a tenant volume and returns the announcing epoch.
func (c *Client) VolumeCreate(name string) (uint64, error) {
	defer c.track()()
	resp, err := c.router.CallAuthority(wire.Request{Op: wire.OpVolumeCreate, Volume: name})
	return resp.Epoch, err
}

// VolumeDelete removes an empty volume.
func (c *Client) VolumeDelete(name string) (uint64, error) {
	defer c.track()()
	resp, err := c.router.CallAuthority(wire.Request{Op: wire.OpVolumeDelete, Volume: name})
	return resp.Epoch, err
}

// VolumeList fetches every volume and the registry version.
func (c *Client) VolumeList() ([]volume.Info, uint64, error) {
	defer c.track()()
	resp, err := c.router.CallAuthority(wire.Request{Op: wire.OpVolumeList})
	return resp.Volumes, resp.VolumesVersion, err
}

// VolumeSetQuota sets a volume's quotas and WFQ weight (zero values mean
// unlimited / keep the current weight).
func (c *Client) VolumeSetQuota(name string, maxFileSets int, opRate, weight float64) (uint64, error) {
	defer c.track()()
	resp, err := c.router.CallAuthority(wire.Request{Op: wire.OpVolumeSetQuota,
		Volume: name, MaxFileSets: maxFileSets, OpRate: opRate, Weight: weight})
	return resp.Epoch, err
}

// VolumeSetPolicy sets a volume's placement policy (spread | pack).
func (c *Client) VolumeSetPolicy(name, policy string) (uint64, error) {
	defer c.track()()
	resp, err := c.router.CallAuthority(wire.Request{Op: wire.OpVolumeSetPolicy,
		Volume: name, Policy: policy})
	return resp.Epoch, err
}

// Flush ships every pending batched write and returns when all are
// acked.
func (c *Client) Flush() {
	if c.batch != nil {
		c.batch.Flush()
	}
}

// Sync flushes pending batches, then checkpoints every daemon — the
// fleet-wide durability barrier.
func (c *Client) Sync() error {
	defer c.track()()
	c.Flush()
	return c.router.Sync()
}

// Close flushes pending writes and tears down every pool.
func (c *Client) Close() error {
	if c.batch != nil {
		c.batch.Close()
	}
	c.router.Close()
	return nil
}
