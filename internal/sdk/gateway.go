package sdk

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"anufs/internal/fleet"
	"anufs/internal/metrics"
	"anufs/internal/obs"
	"anufs/internal/placement"
	"anufs/internal/wire"
)

// Gateway counter names.
const (
	CtrGwRequests  = "gw_requests"
	CtrGwErrors    = "gw_errors"
	CtrGwBadFrames = "gw_bad_frames"
)

// authorityTimeout bounds authority-only forwards (rebalances run many
// handoffs).
const authorityTimeout = 2 * time.Minute

// GatewayConfig parameterizes a gateway.
type GatewayConfig struct {
	// Authority is the fleet authority daemon's wire address.
	Authority string
	// Peers are the other gateways of the tier: their cached cluster maps
	// are consulted before the authority, so N gateways converge on a new
	// epoch without stampeding it.
	Peers []string
	// Budget bounds one routed operation (default fleet.DefaultRouteBudget).
	Budget time.Duration
	// PoolSize is pipelined connections per daemon (default
	// DefaultPoolSize).
	PoolSize int
	// Timeout is the per-call deadline toward daemons (0 =
	// wire.DefaultCallTimeout).
	Timeout time.Duration
	// Obs receives gateway counters and gauges; nil disables.
	Obs *obs.Registry
}

// Gateway is a stateless wire endpoint fronting a sharded fleet: every
// file-set-addressed request routes to its owning daemon over pipelined
// connection pools, wrong-owner rejections and live handoffs are absorbed
// by the fleet router, and namespace/lock operations are fanned out or
// session-mapped so plain wire clients see one logical server. Statelessness
// is what makes the tier horizontally scalable — any gateway can serve any
// client, and the only cross-gateway state (the cluster map) is a cache
// that peers share and epochs invalidate. Client connections may upgrade
// to the tagged protocol (wire.FrameServer handles the hello), so the
// pipelining extends end to end.
//
// The exception to statelessness is lock sessions: a session minted here
// maps lazily to per-daemon sessions, which pins a lock holder to the
// gateway it registered with — leases reap the daemons' sessions if the
// gateway dies, exactly as they reap a dead client's.
type Gateway struct {
	cfg      GatewayConfig
	router   *fleet.Router
	auth     *Pool // authority-only forwards, long deadline
	counters *metrics.CounterSet
	inflight atomic.Int64
	nextSess atomic.Uint64

	mu       sync.Mutex
	sessions map[uint64]*gwSession
	conns    map[net.Conn]struct{}
	closed   bool
}

// gwSession maps one gateway-minted lock session to per-daemon sessions,
// registered lazily against whichever daemons the client's locks land on.
type gwSession struct {
	mu  sync.Mutex
	ids map[int]uint64 // daemon ID → that daemon's session ID
}

// on returns this session's ID on daemon d, registering one on first use.
// The registration runs under the session lock: one client's lock calls
// serialize their first touch of each daemon, which is also what keeps a
// retry from registering twice.
func (s *gwSession) on(d placement.DaemonInfo, c fleet.Caller) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.ids[d.ID]; ok {
		return id, nil
	}
	resp, err := c.Call(wire.Request{Op: wire.OpRegister})
	if err != nil {
		return 0, err
	}
	s.ids[d.ID] = resp.Client
	return resp.Client, nil
}

// snapshot returns the registered (daemon, session) pairs.
func (s *gwSession) snapshot() map[int]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]uint64, len(s.ids))
	for d, id := range s.ids {
		out[d] = id
	}
	return out
}

// NewGateway connects to the fleet and returns a ready gateway (the
// initial cluster map is fetched before it returns).
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	if cfg.Authority == "" {
		return nil, fmt.Errorf("sdk: gateway needs an authority address")
	}
	opts := Options{PoolSize: cfg.PoolSize, Timeout: cfg.Timeout}.withDefaults()
	g := &Gateway{
		cfg:      cfg,
		counters: metrics.NewCounterSet(),
		sessions: map[uint64]*gwSession{},
		conns:    map[net.Conn]struct{}{},
	}
	dial := func(addr string) (fleet.Caller, error) {
		p := NewPool(addr, opts)
		p.SetTimeout(opts.Timeout)
		return p, nil
	}
	router, err := fleet.NewRouter(fleet.RouterConfig{
		AuthorityAddr: cfg.Authority,
		MapSources:    cfg.Peers,
		Budget:        cfg.Budget,
		Obs:           cfg.Obs,
		DialCaller:    dial,
	})
	if err != nil {
		return nil, err
	}
	g.router = router
	g.auth = NewPool(cfg.Authority, Options{PoolSize: 1, Timeout: authorityTimeout})
	g.auth.SetTimeout(authorityTimeout)
	if cfg.Obs != nil {
		cfg.Obs.AddCounters(g.counters.Snapshot)
		cfg.Obs.AddGauges(func() []obs.Gauge {
			return []obs.Gauge{{Name: "gw_inflight_requests", Value: float64(g.inflight.Load())}}
		})
	}
	return g, nil
}

// Router exposes the gateway's fleet router (map cache, counters).
func (g *Gateway) Router() *fleet.Router { return g.router }

// ServeListener accepts and serves connections until the listener closes.
func (g *Gateway) ServeListener(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			conn.Close()
			return
		}
		g.conns[conn] = struct{}{}
		g.mu.Unlock()
		go g.ServeConn(conn)
	}
}

// ServeConn serves one client connection (line mode, upgrading to tagged
// frames on hello) until it closes.
func (g *Gateway) ServeConn(conn net.Conn) {
	defer func() {
		conn.Close()
		g.mu.Lock()
		delete(g.conns, conn)
		g.mu.Unlock()
	}()
	fs := &wire.FrameServer{
		Handle:     g.serve,
		OnBadFrame: func() { g.counters.Add(CtrGwBadFrames, 1) },
		OnInflight: func(d int64) { g.inflight.Add(d) },
	}
	fs.Serve(conn)
}

// Close tears down client connections and daemon pools. Idempotent.
func (g *Gateway) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	conns := g.conns
	g.conns = map[net.Conn]struct{}{}
	g.mu.Unlock()
	for conn := range conns {
		conn.Close()
	}
	g.auth.Close()
	g.router.Close()
}

// session looks a gateway-minted lock session up.
func (g *Gateway) session(id uint64) *gwSession {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sessions[id]
}

// serve routes one request. Responses keep the caller's request ID even
// when the routed call failed; server-reported error strings are relayed
// verbatim so a client behind the gateway sees the same errors it would
// see against the daemon.
//
// With a registry, the gateway is the fleet's trace edge: a request
// arriving without trace context gets a fresh trace ID minted here, the
// gateway hop is recorded as a "gateway" span, and the span's ID rides
// downstream as the daemons' Parent — so a stitched timeline roots at the
// tier the client actually talked to. The trace ID is echoed in the
// response for clients that want to pull the timeline afterwards.
func (g *Gateway) serve(req wire.Request) wire.Response {
	g.counters.Add(CtrGwRequests, 1)
	reg := g.cfg.Obs
	// Observer ops reuse the Trace field to address a target trace; Ping is
	// the health no-op. Neither should mint or join traces.
	observer := req.Op == wire.OpTrace || req.Op == wire.OpTunerLog || req.Op == wire.OpTracePull
	traced := reg != nil && !observer && req.Op != wire.OpPing
	var trace, span, inParent uint64
	var start time.Time
	if traced {
		trace = req.Trace
		if trace == 0 {
			trace = reg.NextTraceID()
		}
		span = reg.NextSpanID()
		inParent = req.Parent
		req.Trace = trace
		req.Parent = span
		start = time.Now()
	}
	resp := g.route(req)
	resp.ID = req.ID
	if resp.Err != "" {
		g.counters.Add(CtrGwErrors, 1)
	}
	if traced {
		dur := time.Since(start)
		op := string(req.Op)
		reg.Hist.Get("gw_request_seconds", fmt.Sprintf("op=%q", op)).ObserveTrace(dur, trace)
		reg.Spans.Add(obs.Span{
			Trace: trace, ID: span, Parent: inParent, Name: "gateway", Op: op,
			FileSet: req.FileSet, Server: -1, Start: start, Dur: dur, Err: resp.Err,
		})
		reg.Slow.MaybePromote(reg.Spans, trace, op, dur)
		resp.Trace = trace
	}
	return resp
}

func (g *Gateway) route(req wire.Request) wire.Response {
	resp := wire.Response{ID: req.ID}
	fail := func(err error) wire.Response {
		resp.Err = err.Error()
		return resp
	}
	switch req.Op {
	case wire.OpPing:
		return resp
	case wire.OpTrace:
		// Like a daemon, the gateway answers trace dumps from its own span
		// ring — its edge spans; the fleet stitcher is the cross-node view.
		if g.cfg.Obs != nil {
			if req.Trace != 0 {
				resp.Spans = g.cfg.Obs.Spans.ByTrace(req.Trace)
			} else {
				resp.Spans = g.cfg.Obs.Spans.Snapshot(req.Count)
			}
		}
		return resp
	case wire.OpTracePull:
		// The gateway is a hop in fleet traces, so it answers trace pulls
		// from its own rings instead of forwarding — the stitcher queries
		// each process directly, this one included.
		resp.Now = time.Now().UnixNano()
		if g.cfg.Obs != nil {
			resp.Spans = g.cfg.Obs.Spans.ByTrace(req.Trace)
			resp.Spans = append(resp.Spans, g.cfg.Obs.Slow.ByTrace(req.Trace)...)
			resp.Node = g.cfg.Obs.Node()
		}
		return resp
	case wire.OpMap:
		cm, err := g.router.Refresh()
		if err != nil && cm == nil {
			return fail(err)
		}
		encoded, err := cm.Encode()
		if err != nil {
			return fail(err)
		}
		resp.Map = encoded
		resp.Epoch = cm.Epoch
		return resp
	case wire.OpMapEpoch:
		cm, _ := g.router.Refresh()
		if cm == nil {
			return fail(errNoMap)
		}
		resp.Epoch = cm.Epoch
		return resp
	case wire.OpSync:
		if err := g.router.SyncTraced(req.Trace, req.Parent); err != nil {
			return fail(err)
		}
		return resp
	case wire.OpAssign, wire.OpRebalance,
		wire.OpVolumeCreate, wire.OpVolumeDelete, wire.OpVolumeList,
		wire.OpVolumeSetQuota, wire.OpVolumeSetPolicy:
		// Authority-only: forward verbatim, then mark the map cache stale
		// up to the answered epoch so every later map read (ours and our
		// peers', via peer refresh) reaches it.
		out, err := g.authorityCall(req)
		if err != nil && out.Err == "" {
			return fail(err)
		}
		if out.Epoch > 0 {
			g.router.Maps().Invalidate(out.Epoch)
		}
		return out
	case wire.OpCreateFileSet:
		// Placement-aware create: unplaced file sets are assigned by the
		// authority first, which plain forwarding cannot do.
		if err := g.router.CreateFileSet(req.FileSet); err != nil {
			return fail(err)
		}
		return resp
	case wire.OpMount, wire.OpUnmount:
		// Mount tables are per-daemon state: broadcast so every daemon
		// resolves the same namespace. First error wins, all attempted.
		return g.broadcast(req)
	case wire.OpResolve:
		return g.anyDaemon(req)
	case wire.OpPCreate, wire.OpPStat, wire.OpPRemove:
		// Resolve the global path on a daemon, then route the rewritten
		// file-set-addressed op to its owner — the resolve and the data op
		// may land on different daemons.
		out := g.anyDaemon(wire.Request{Op: wire.OpResolve, Path: req.Path})
		if out.Err != "" {
			resp.Err = out.Err
			return resp
		}
		fwd := wire.Request{FileSet: out.FileSet, Path: out.Rel, Record: req.Record}
		switch req.Op {
		case wire.OpPCreate:
			fwd.Op = wire.OpCreate
		case wire.OpPStat:
			fwd.Op = wire.OpStat
		case wire.OpPRemove:
			fwd.Op = wire.OpRemove
		}
		return g.forward(fwd)
	case wire.OpRegister:
		id := g.nextSess.Add(1)
		g.mu.Lock()
		g.sessions[id] = &gwSession{ids: map[int]uint64{}}
		g.mu.Unlock()
		resp.Client = id
		return resp
	case wire.OpLock, wire.OpUnlock:
		sess := g.session(req.Client)
		if sess == nil {
			return fail(errNoSession)
		}
		var out wire.Response
		err := g.router.Do(req.FileSet, func(d placement.DaemonInfo, c fleet.Caller) error {
			id, err := sess.on(d, c)
			if err != nil {
				return err
			}
			fwd := req
			fwd.Client = id
			got, err := c.Call(fwd)
			out = got
			return err
		})
		if err != nil && out.Err == "" {
			return fail(err)
		}
		return out
	case wire.OpRenew:
		sess := g.session(req.Client)
		if sess == nil {
			return fail(errNoSession)
		}
		cm := g.router.Map()
		var firstErr error
		for daemonID, id := range sess.snapshot() {
			d, ok := cm.Daemon(daemonID)
			if !ok {
				continue // daemon left the fleet; its leases died with it
			}
			c, err := g.router.Caller(d.Addr)
			if err == nil {
				_, err = c.Call(wire.Request{Op: wire.OpRenew, Client: id})
			}
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("sdk: renew on daemon %d: %w", daemonID, err)
			}
		}
		if firstErr != nil {
			return fail(firstErr)
		}
		return resp
	}
	if req.FileSet == "" {
		return fail(errNotRoutable)
	}
	return g.forward(req)
}

// forward routes a file-set-addressed request to its owner, relaying
// server error strings.
func (g *Gateway) forward(req wire.Request) wire.Response {
	out, err := g.router.Forward(req)
	if err != nil && out.Err == "" {
		out.Err = err.Error()
	}
	return out
}

// broadcast sends a request to every daemon in the map; first error wins
// but every daemon is attempted.
func (g *Gateway) broadcast(req wire.Request) wire.Response {
	resp := wire.Response{}
	var firstErr error
	for _, d := range g.router.Map().Daemons {
		c, err := g.router.Caller(d.Addr)
		if err == nil {
			_, err = c.Call(req)
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("sdk: daemon %d: %w", d.ID, err)
		}
	}
	if firstErr != nil {
		resp.Err = firstErr.Error()
	}
	return resp
}

// anyDaemon tries the request against each daemon until one answers
// without a transport error (server-reported errors are final: every
// daemon would answer the same).
func (g *Gateway) anyDaemon(req wire.Request) wire.Response {
	var lastErr error
	for _, d := range g.router.Map().Daemons {
		c, err := g.router.Caller(d.Addr)
		if err == nil {
			out, err2 := c.Call(req)
			if err2 == nil || out.Err != "" {
				if err2 != nil && out.Err == "" {
					out.Err = err2.Error()
				}
				return out
			}
			err = err2
		}
		lastErr = err
	}
	resp := wire.Response{}
	if lastErr == nil {
		lastErr = errNoMap
	}
	resp.Err = lastErr.Error()
	return resp
}

// authorityCall forwards one raw request to the authority over the
// dedicated long-deadline pool, retrying once on a transport failure.
func (g *Gateway) authorityCall(req wire.Request) (wire.Response, error) {
	out, err := g.auth.Call(req)
	if err != nil && out.Err == "" {
		out, err = g.auth.Call(req)
	}
	return out, err
}

type gwError string

func (e gwError) Error() string { return string(e) }

const (
	errNoMap       = gwError("sdk: no cluster map available")
	errNotRoutable = gwError("sdk: operation has no file set to route by (connect to a daemon directly)")
	errNoSession   = gwError("sdk: unknown lock session (register through this gateway first)")
)
