package sdk

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"anufs/internal/obs"
	"anufs/internal/wire"
)

// errConnClosed fails pending calls when the connection dies. The message
// contains "connection closed" on purpose: the fleet router's transient-
// error detection keys on it and retries through a reconnect.
var errConnClosed = errors.New("sdk: connection closed")

// helloTimeout bounds the line-mode hello exchange at dial time.
const helloTimeout = 5 * time.Second

// Conn is one pipelined connection: many in-flight requests multiplexed
// over one TCP connection as tagged frames, completing out of order. Safe
// for concurrent use. When the server does not speak the tagged protocol
// the Conn transparently degrades to a plain line-mode wire.Client — same
// API, one request per response wait slot, still concurrency-safe.
type Conn struct {
	conn net.Conn
	line *wire.Client // non-nil = line-mode fallback; all calls delegate

	writeMu sync.Mutex
	bw      *bufio.Writer
	fw      *wire.FrameWriter
	encBuf  []byte // reused request encode buffer, guarded by writeMu

	mu      sync.Mutex
	nextTag uint64
	pending map[uint64]chan wire.Response
	err     error

	done     chan struct{}
	inflight atomic.Int64
	timeout  atomic.Int64
	caps     uint64         // capability bits the server granted at hello
	depth    *obs.Histogram // client-side pipeline depth; may be nil
}

// Dial connects to a wire server and negotiates the tagged protocol: it
// sends an OpHello as the connection's first (line-mode) request. A server
// that accepts switches the connection to frames; any error answer —
// including an old server's "unknown op" — makes Dial fall back to a
// line-mode wire.Client, so the sdk interoperates with pre-tagged servers.
func Dial(addr string, opts Options) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	_ = nc.SetDeadline(time.Now().Add(helloTimeout))
	br := bufio.NewReaderSize(nc, 64<<10)
	enc := json.NewEncoder(nc)
	hello := wire.HelloRequest()
	hello.ID = 1
	if err := enc.Encode(hello); err != nil {
		nc.Close()
		return nil, fmt.Errorf("sdk: hello: %w", err)
	}
	lineBytes, err := br.ReadBytes('\n')
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("sdk: hello reply: %w", err)
	}
	var resp wire.Response
	if err := json.Unmarshal(lineBytes, &resp); err != nil {
		nc.Close()
		return nil, fmt.Errorf("sdk: hello reply: %w", err)
	}
	if resp.Err != "" || resp.Proto != wire.TaggedProtoV1 {
		// The peer does not speak frames (old server, or a proxy that only
		// relays lines): fall back to the line protocol on a fresh
		// connection, so the half-upgraded one cannot leak state.
		nc.Close()
		lc, err := wire.Dial(addr)
		if err != nil {
			return nil, err
		}
		lc.SetTimeout(opts.Timeout)
		return &Conn{line: lc, done: make(chan struct{})}, nil
	}
	_ = nc.SetDeadline(time.Time{})
	c := &Conn{
		conn:    nc,
		bw:      bufio.NewWriterSize(nc, 64<<10),
		pending: map[uint64]chan wire.Response{},
		done:    make(chan struct{}),
		caps:    resp.Caps,
	}
	c.fw = wire.NewFrameWriter(c.bw)
	c.timeout.Store(int64(opts.Timeout))
	if opts.Obs != nil {
		c.depth = opts.Obs.Hist.Get("sdk_pipeline_depth", "")
	}
	go c.readLoop(br)
	return c, nil
}

// Tagged reports whether the connection upgraded to the tagged protocol
// (false = line-mode fallback).
func (c *Conn) Tagged() bool { return c.line == nil }

// Caps returns the capability bits the server granted at hello — the
// intersection of both sides' wire.SupportedCaps. Zero for line-mode
// fallbacks and pre-capability servers: trace context still travels (the
// fields are simply ignored by old peers), but callers can use this to
// know whether the far side records it.
func (c *Conn) Caps() uint64 { return c.caps }

// InFlight returns the number of calls currently awaiting responses — the
// load signal pool picking compares.
func (c *Conn) InFlight() int64 { return c.inflight.Load() }

// SetTimeout overrides the per-call response deadline: 0 restores
// wire.DefaultCallTimeout, negative disables it. Applies to calls started
// after it.
func (c *Conn) SetTimeout(d time.Duration) {
	if c.line != nil {
		c.line.SetTimeout(d)
		return
	}
	c.timeout.Store(int64(d))
}

// Close tears the connection down; in-flight calls fail.
func (c *Conn) Close() error {
	if c.line != nil {
		return c.line.Close()
	}
	err := c.conn.Close()
	<-c.done
	return err
}

// Ping round-trips a no-op (health checks).
func (c *Conn) Ping() error {
	_, err := c.Call(wire.Request{Op: wire.OpPing})
	return err
}

// readLoop decodes response frames and completes the tagged calls.
func (c *Conn) readLoop(br *bufio.Reader) {
	defer close(c.done)
	fr := wire.NewFrameReader(br)
	var dec wire.Decoder
	var resp wire.Response // reused across frames for the fast decoder's string reuse
	for {
		kind, tag, payload, err := fr.ReadFrame()
		if err != nil {
			break
		}
		if kind != wire.FrameResponse {
			break // protocol violation; framing is not trustworthy anymore
		}
		fast := dec.DecodeResponse(payload, &resp)
		if !fast {
			resp = wire.Response{}
			if err := json.Unmarshal(payload, &resp); err != nil {
				continue // intact framing, broken payload: let the call time out
			}
		}
		c.mu.Lock()
		ch, ok := c.pending[tag]
		delete(c.pending, tag)
		c.mu.Unlock()
		if ok {
			delivered := resp
			if fast && delivered.Record != nil {
				// The fast decoder's Record points into its scratch, which
				// the next frame overwrites; the waiter gets its own copy.
				rec := *delivered.Record
				delivered.Record = &rec
			}
			ch <- delivered
		}
	}
	// Connection gone: fail everything pending.
	c.mu.Lock()
	c.err = errConnClosed
	for tag, ch := range c.pending {
		ch <- wire.Response{ID: tag, Err: c.err.Error()}
		delete(c.pending, tag)
	}
	c.mu.Unlock()
}

// sendRequest encodes and writes one request frame under the write lock,
// reusing the connection's encode buffer; requests the fast encoder
// cannot represent fall back to encoding/json. The flush per frame keeps
// latency flat at low depth; at high depth the kernel coalesces the
// small writes anyway.
//
//anufs:hotpath
func (c *Conn) sendRequest(tag uint64, req *wire.Request) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	payload, ok := wire.AppendRequest(c.encBuf[:0], req)
	if ok {
		c.encBuf = payload
	} else {
		var err error
		if payload, err = json.Marshal(req); err != nil {
			return err
		}
	}
	if err := c.fw.WriteFrame(wire.FrameRequest, tag, payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Call sends a request and waits for its response; concurrent calls share
// the connection and complete independently (out-of-order).
func (c *Conn) Call(req wire.Request) (wire.Response, error) {
	n := c.inflight.Add(1)
	defer c.inflight.Add(-1)
	if c.depth != nil {
		// Depth histogram buckets read as request counts, not seconds.
		c.depth.Observe(time.Duration(n))
	}
	if c.line != nil {
		return c.line.Call(req)
	}
	ch := make(chan wire.Response, 1)
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return wire.Response{}, c.err
	}
	c.nextTag++
	tag := c.nextTag
	req.ID = tag
	c.pending[tag] = ch
	c.mu.Unlock()

	if err := c.sendRequest(tag, &req); err != nil {
		c.mu.Lock()
		delete(c.pending, tag)
		c.mu.Unlock()
		return wire.Response{}, fmt.Errorf("%w: %w", wire.ErrSendFailed, err)
	}
	d := time.Duration(c.timeout.Load())
	if d == 0 {
		d = wire.DefaultCallTimeout
	}
	var resp wire.Response
	if d < 0 {
		resp = <-ch
	} else {
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case resp = <-ch:
		case <-timer.C:
			// Abandon the call: readLoop's send into the buffered channel
			// cannot block, and deleting the entry keeps the map bounded.
			c.mu.Lock()
			delete(c.pending, tag)
			c.mu.Unlock()
			return wire.Response{}, fmt.Errorf("wire: %s call %w after %v", req.Op, wire.ErrTimedOut, d)
		}
	}
	return resp, wire.ResponseError(resp)
}
