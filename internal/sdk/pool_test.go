package sdk

import (
	"testing"
	"time"

	"anufs/internal/wire"
)

// Sequential calls ramp the pool to its full size: every call that finds
// an empty, due slot dials it.
func TestPoolRampsToFullSize(t *testing.T) {
	f := startFleet(t, 1)
	p := NewPool(f.daemons[0].addr, Options{PoolSize: 3, Timeout: 5 * time.Second, HealthInterval: -1})
	defer p.Close()
	for i := 0; i < 3; i++ {
		if err := p.Ping(); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
	if got := p.Live(); got != 3 {
		t.Fatalf("live connections = %d after 3 calls, want 3", got)
	}
}

// A pool to an unreachable address errors calls (after the slots back
// off) instead of hanging, and NewPool itself never fails.
func TestPoolUnreachableAddress(t *testing.T) {
	p := NewPool("127.0.0.1:1", Options{PoolSize: 2, HealthInterval: -1})
	defer p.Close()
	if err := p.Ping(); err == nil {
		t.Fatal("ping against an unreachable address succeeded")
	}
	if got := p.Live(); got != 0 {
		t.Fatalf("live connections = %d to an unreachable address", got)
	}
}

// When the daemon dies, calls fail and the erroring connections are
// discarded; when it comes back on the same address, the slots redial
// after their backoff and the pool recovers without being rebuilt.
func TestPoolRedialsAfterRestart(t *testing.T) {
	f := startFleet(t, 1)
	d := f.daemons[0]
	p := NewPool(d.addr, Options{PoolSize: 2, Timeout: time.Second, HealthInterval: -1})
	defer p.Close()
	if err := p.Ping(); err != nil {
		t.Fatal(err)
	}

	d.srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for p.Live() > 0 && time.Now().Before(deadline) {
		p.Ping() // errors discard the dead connections
		time.Sleep(10 * time.Millisecond)
	}
	if p.Live() != 0 {
		t.Fatal("dead connections were never discarded")
	}

	srv := wire.NewServer(d.clus)
	if _, err := srv.Listen(d.addr); err != nil {
		t.Fatalf("restart on %s: %v", d.addr, err)
	}
	d.srv = srv // cleanup closes the new server
	var err error
	for time.Now().Before(deadline) {
		if err = p.Ping(); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("pool never recovered after restart: %v", err)
	}
}

// The health loop notices a wedged connection and discards it without
// waiting for an unlucky caller.
func TestPoolHealthLoopDiscards(t *testing.T) {
	f := startFleet(t, 1)
	d := f.daemons[0]
	p := NewPool(d.addr, Options{PoolSize: 1, Timeout: 200 * time.Millisecond,
		HealthInterval: 50 * time.Millisecond})
	defer p.Close()
	if err := p.Ping(); err != nil {
		t.Fatal(err)
	}
	d.srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for p.Live() > 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if p.Live() != 0 {
		t.Fatal("health loop never discarded the dead connection")
	}
}

func TestPoolClosedErrors(t *testing.T) {
	f := startFleet(t, 1)
	p := NewPool(f.daemons[0].addr, Options{PoolSize: 1, HealthInterval: -1})
	if err := p.Ping(); err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent
	if err := p.Ping(); err == nil {
		t.Fatal("call on a closed pool succeeded")
	}
}
