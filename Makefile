GO ?= go
ANUFSVET := $(CURDIR)/bin/anufsvet

.PHONY: all build test vet fuzz-smoke bench-sat bench-trace bench-vol clean

all: build test vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# vet runs go vet plus the repository's own invariant suite
# (internal/analysis via cmd/anufsvet; see DESIGN.md §13).
vet: $(ANUFSVET)
	$(GO) vet ./...
	$(GO) vet -vettool=$(ANUFSVET) ./...

$(ANUFSVET): FORCE
	$(GO) build -o $(ANUFSVET) ./cmd/anufsvet

# fuzz-smoke replays the committed corpora and fuzzes briefly, as CI does.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzRequestDecode -fuzztime 10s ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzTaggedFrame -fuzztime 10s ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzDecodeClusterMap -fuzztime 10s ./internal/placement/
	$(GO) test -run '^$$' -fuzz FuzzVolumeQualifiedName -fuzztime 10s ./internal/namespace/

# bench-sat measures sdk saturation (blocking vs pipelined vs batched) and
# enforces the batched >= 5x blocking throughput floor, as CI does.
bench-sat:
	$(GO) run ./cmd/benchsat -check

# bench-trace measures edge-tracing overhead on the pipelined transport
# and enforces the <=5% throughput-loss budget, as CI does.
bench-trace:
	$(GO) run ./cmd/benchsat -trace -trace-check

# bench-vol measures cross-tenant isolation (victim p99 under a noisy
# neighbour, WFQ vs global FIFO) and enforces the 3x degradation ceiling
# on the WFQ path, as CI does.
bench-vol:
	$(GO) run ./cmd/benchvol -check

clean:
	rm -rf bin

FORCE:
