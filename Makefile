GO ?= go
ANUFSVET := $(CURDIR)/bin/anufsvet

.PHONY: all build test vet fuzz-smoke bench-sat bench-trace bench-vol bench-alloc clean

all: build test vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# vet runs go vet plus the repository's own invariant suite
# (internal/analysis via cmd/anufsvet; see DESIGN.md §13).
vet: $(ANUFSVET)
	$(GO) vet ./...
	$(GO) vet -vettool=$(ANUFSVET) ./...

$(ANUFSVET): FORCE
	$(GO) build -o $(ANUFSVET) ./cmd/anufsvet

# fuzz-smoke replays the committed corpora and fuzzes briefly, as CI does.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzRequestDecode -fuzztime 10s ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzTaggedFrame -fuzztime 10s ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzDecodeClusterMap -fuzztime 10s ./internal/placement/
	$(GO) test -run '^$$' -fuzz FuzzVolumeQualifiedName -fuzztime 10s ./internal/namespace/

# bench-sat measures sdk saturation (blocking vs pipelined vs batched) and
# enforces the batched >= 5x blocking throughput floor, as CI does.
bench-sat:
	$(GO) run ./cmd/benchsat -check

# bench-trace measures edge-tracing overhead on the pipelined transport
# and enforces the <=5% throughput-loss budget, as CI does.
bench-trace:
	$(GO) run ./cmd/benchsat -trace -trace-check

# bench-vol measures cross-tenant isolation (victim p99 under a noisy
# neighbour, WFQ vs global FIFO) and enforces the 3x degradation ceiling
# on the WFQ path, as CI does.
bench-vol:
	$(GO) run ./cmd/benchvol -check

# bench-alloc measures the marked hot paths (wire fast codec, journal
# frame encoding) and enforces the 0 allocs/op budget via cmd/allocguard,
# as CI does. Baseline benchmarks (encoding/json comparison) are exempt.
bench-alloc:
	$(GO) test -run=NONE -bench=BenchmarkEncode -benchmem ./internal/wire/ ./internal/journal/ \
		| tee bench_alloc.txt
	$(GO) run ./cmd/allocguard bench_alloc.txt

clean:
	rm -rf bin bench_alloc.txt

FORCE:
