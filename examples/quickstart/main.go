// Quickstart: the ANU placement API in five minutes.
//
// This example exercises the core algorithm directly — no simulator, no
// cluster — to show what a downstream system embeds: a Mapper that places
// file sets by hashing, a Delegate that retunes mapped regions from
// observed latencies, and the failure/recovery paths that move the minimum
// number of file sets.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"anufs/internal/core"
)

func main() {
	// A five-server cluster. ANU needs no speeds, no workload model — only
	// the server IDs and a shared hash seed (in core.Config).
	cfg := core.Defaults()
	mapper, err := core.NewMapper(cfg, []int{0, 1, 2, 3, 4})
	if err != nil {
		log.Fatal(err)
	}

	// File sets are placed by hashing their names — no table, no I/O.
	fileSets := make([]string, 40)
	for i := range fileSets {
		fileSets[i] = fmt.Sprintf("projects/team-%02d", i)
	}
	fmt.Println("== initial placement (equal shares) ==")
	printPlacement(mapper, fileSets)

	// Suppose server 0 is slow and overloaded: it reports high latency.
	// The delegate shrinks its mapped region and the others absorb the
	// load through the half-occupancy renormalization.
	delegate := core.NewDelegate(cfg)
	reports := []core.LatencyReport{
		{ServerID: 0, MeanLatency: 0.500, Requests: 120}, // 500 ms — overloaded
		{ServerID: 1, MeanLatency: 0.040, Requests: 100},
		{ServerID: 2, MeanLatency: 0.035, Requests: 110},
		{ServerID: 3, MeanLatency: 0.030, Requests: 95},
		{ServerID: 4, MeanLatency: 0.028, Requests: 130},
	}
	before := mapper.Clone()
	res, err := delegate.Update(mapper, reports)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== after one delegate round (aggregate %.0f ms) ==\n", res.Aggregate*1000)
	for _, d := range res.Decisions {
		fmt.Printf("  server %d: latency %5.0f ms, factor %.2f (%s)\n",
			d.ServerID, d.Latency*1000, d.Factor, d.Reason)
	}
	moves := core.Moves(before, mapper, fileSets)
	fmt.Printf("  %d of %d file sets moved\n", len(moves), len(fileSets))
	printPlacement(mapper, fileSets)

	// Failure: server 2 dies. Only its file sets re-hash; survivors grow
	// proportionally (cache-preserving recovery).
	before = mapper.Clone()
	if err := mapper.RemoveServer(2); err != nil {
		log.Fatal(err)
	}
	moves = core.Moves(before, mapper, fileSets)
	fmt.Printf("\n== server 2 failed: %d file sets moved ==\n", len(moves))
	for _, mv := range moves {
		fmt.Printf("  %s: %d -> %d\n", mv.Name, mv.From, mv.To)
	}

	// Recovery: the server rejoins into a free partition with a seed share
	// and will grow back under tuning.
	before = mapper.Clone()
	if err := mapper.AddServer(2, 0); err != nil {
		log.Fatal(err)
	}
	moves = core.Moves(before, mapper, fileSets)
	fmt.Printf("\n== server 2 recovered: %d file sets moved back ==\n", len(moves))
	printPlacement(mapper, fileSets)
}

func printPlacement(m *core.Mapper, fileSets []string) {
	counts := map[int]int{}
	for _, fs := range fileSets {
		counts[m.Owner(fs)]++
	}
	for _, id := range m.Servers() {
		frac, _ := m.ShareFrac(id)
		fmt.Printf("  server %d: share %5.1f%% of interval, %2d file sets\n",
			id, frac*100, counts[id])
	}
	// The unit interval itself (paper Figure 2): digits are server regions,
	// dots the unmapped half that keeps a free partition for recovery.
	fmt.Print(indent(m.Interval().Render(72)))
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
