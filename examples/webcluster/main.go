// Webcluster: an ANU-managed metadata service behind an HTTP API.
//
// The paper closes by noting ANU "suits any architecture in which data are
// partitioned among servers at runtime, but can be moved from server to
// server … this includes Web servers, clustered databases, and NFS
// servers" (§8). This example stands up the live cluster behind a JSON
// HTTP API, drives it with a skewed client load, lets the delegate retune
// in the background, and reports the resulting placement.
//
// Run with: go run ./examples/webcluster          (self-driving demo)
//
//	go run ./examples/webcluster -serve :8080     (stay up and serve)
//
// API:
//
//	PUT    /meta/{fileset}/{path...}   body ignored, creates a record
//	GET    /meta/{fileset}/{path...}   returns the record as JSON
//	DELETE /meta/{fileset}/{path...}
//	GET    /stats                      per-server placement and counters
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"anufs/internal/live"
	"anufs/internal/sharedisk"
)

func main() {
	serve := flag.String("serve", "", "address to listen on (empty: run the self-driving demo)")
	flag.Parse()

	disk := sharedisk.NewStore(0)
	for i := 0; i < 16; i++ {
		if err := disk.CreateFileSet(fmt.Sprintf("site%02d", i)); err != nil {
			log.Fatal(err)
		}
	}
	cfg := live.DefaultConfig()
	cfg.Window = 300 * time.Millisecond
	cfg.OpCost = time.Millisecond
	c, err := live.NewCluster(cfg, disk, map[int]float64{0: 1, 1: 3, 2: 9})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()

	mux := http.NewServeMux()
	mux.HandleFunc("/meta/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/meta/")
		fileSet, path, ok := strings.Cut(rest, "/")
		if !ok || fileSet == "" || path == "" {
			http.Error(w, "want /meta/{fileset}/{path}", http.StatusBadRequest)
			return
		}
		path = "/" + path
		switch r.Method {
		case http.MethodPut:
			err := c.Create(fileSet, path, sharedisk.Record{Size: r.ContentLength, Owner: "http"})
			writeResult(w, nil, err)
		case http.MethodGet:
			rec, err := c.Stat(fileSet, path)
			writeResult(w, rec, err)
		case http.MethodDelete:
			writeResult(w, nil, c.Remove(fileSet, path))
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		writeResult(w, c.Stats(), nil)
	})

	if *serve != "" {
		log.Printf("webcluster: listening on %s", *serve)
		log.Fatal(http.ListenAndServe(*serve, mux))
	}

	// Self-driving demo: an in-process test server plus a skewed client
	// fleet (site00 is ~10x hotter than the rest), then show how the
	// delegate shifted the mapping while requests were flowing.
	ts := httptest.NewServer(mux)
	defer ts.Close()
	client := ts.Client()

	fmt.Println("driving skewed HTTP load for ~3 s...")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	time.AfterFunc(3*time.Second, func() { close(stop) })
	var reqs int64
	var mu sync.Mutex
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				site := "site00" // hot site
				if i%10 == g%10 {
					site = fmt.Sprintf("site%02d", 1+(g+i)%15)
				}
				url := fmt.Sprintf("%s/meta/%s/obj-%d-%d", ts.URL, site, g, i)
				req, _ := http.NewRequest(http.MethodPut, url, nil)
				if resp, err := client.Do(req); err == nil {
					resp.Body.Close()
					mu.Lock()
					reqs++
					mu.Unlock()
				}
				i++
			}
		}(g)
	}
	wg.Wait()

	fmt.Printf("served %d HTTP metadata requests\n\n", reqs)
	fmt.Println("final placement (speeds 1, 3, 9 — watch the shares follow speed):")
	for _, st := range c.Stats() {
		fmt.Printf("  server %d (speed %g): share %5.1f%%, owns %2d file sets, served %d ops\n",
			st.ID, st.Speed, st.ShareFrac*100, len(st.Owned), st.Served)
	}
	fmt.Printf("file-set moves performed while serving: %d\n", c.Moves())
}

func writeResult(w http.ResponseWriter, v any, err error) {
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if v == nil {
		v = map[string]string{"status": "ok"}
	}
	_ = json.NewEncoder(w).Encode(v)
}
