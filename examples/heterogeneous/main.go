// Heterogeneous-cluster demo: the paper's headline result on your terminal.
//
// Simulates the 5-server cluster with speeds 1, 3, 5, 7, 9 serving the
// synthetic heavy-tailed workload under three policies — round-robin
// (heterogeneity-blind), dynamic prescient (perfect knowledge), and ANU
// randomization (no knowledge, adaptive) — then renders the per-server
// latency series and a summary table. The shape to look for: round-robin's
// slow server runs away, prescient is balanced from the start, and ANU
// converges to prescient-comparable balance within a few windows.
//
// Run with: go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"os"

	"anufs/internal/cluster"
	"anufs/internal/core"
	"anufs/internal/placement"
	"anufs/internal/plot"
	"anufs/internal/workload"
)

func main() {
	// A reduced copy of the paper's synthetic workload so the demo runs in
	// under a second: 60 file sets with w = 10^(3x) weights, 20 windows.
	wcfg := workload.SyntheticConfig{
		Seed:       42,
		FileSets:   60,
		Requests:   18000,
		Duration:   2400,
		WeightSpan: 3,
		Alpha:      0.625 * (100000.0 / 10000.0) / (18000.0 / 2400.0),
	}
	tr := workload.Generate(wcfg)
	ccfg := cluster.Defaults()

	policies := []placement.Policy{
		placement.NewRoundRobin(),
		placement.NewPrescient(ccfg.Speeds, tr, ccfg.Window),
		placement.NewANU(core.Defaults()),
	}

	var rows []plot.SummaryRow
	for _, pol := range policies {
		res, err := cluster.Run(ccfg, tr, pol)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", pol.Name())
		fmt.Print(plot.ASCII(res.Series, 72, 12))
		fmt.Println()
		rows = append(rows, plot.SummaryRow{
			Label:   pol.Name(),
			Summary: res.Series.Summarize(),
			Moves:   res.Moves,
		})
	}
	fmt.Println("=== summary ===")
	if err := plot.WriteSummaryTable(os.Stdout, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nNote how ANU reaches the prescient regime with zero a-priori")
	fmt.Println("knowledge of server speeds or file-set weights (paper §7).")
}
