// Failover demo: a live, concurrent metadata cluster losing and regaining a
// server.
//
// Builds a real goroutine-based cluster over an in-memory shared disk,
// writes metadata into every file set, crashes a server, and shows the
// paper's recovery properties in action: the survivors take over only the
// victim's file sets (load locality is preserved), flushed metadata
// survives the crash, and a recovered server rejoins into a free partition.
//
// Run with: go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"time"

	"anufs/internal/live"
	"anufs/internal/sharedisk"
)

func main() {
	disk := sharedisk.NewStore(0)
	for i := 0; i < 12; i++ {
		if err := disk.CreateFileSet(fmt.Sprintf("vol%02d", i)); err != nil {
			log.Fatal(err)
		}
	}
	cfg := live.DefaultConfig()
	cfg.Window = time.Hour // tune manually in this demo
	c, err := live.NewCluster(cfg, disk, map[int]float64{0: 1, 1: 3, 2: 5, 3: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()

	fmt.Println("== initial ownership ==")
	printStats(c)

	// Write a record into every file set, then checkpoint by a no-op tune
	// (records flush when file sets move; here we rely on graceful paths).
	for i := 0; i < 12; i++ {
		fs := fmt.Sprintf("vol%02d", i)
		if err := c.Create(fs, "/README", sharedisk.Record{Size: 1024, Owner: "admin"}); err != nil {
			log.Fatal(err)
		}
	}

	victim := 3
	fmt.Printf("\n== killing server %d ==\n", victim)
	movesBefore := c.Moves()
	if err := c.Kill(victim); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("file sets moved by the failure: %d (only the victim's sets re-hash)\n",
		c.Moves()-movesBefore)
	printStats(c)

	// Every file set is still reachable; unflushed records on the victim
	// were lost (crash semantics), the rest survive.
	lost, kept := 0, 0
	for i := 0; i < 12; i++ {
		fs := fmt.Sprintf("vol%02d", i)
		if _, err := c.Stat(fs, "/README"); err != nil {
			lost++
		} else {
			kept++
		}
	}
	fmt.Printf("records kept: %d, lost to the crash (unflushed on victim): %d\n", kept, lost)

	fmt.Println("\n== recovering as server 9 ==")
	movesBefore = c.Moves()
	if err := c.AddServer(9, 7); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("file sets moved by the join: %d (seed share only; tuning grows it)\n",
		c.Moves()-movesBefore)
	printStats(c)
}

func printStats(c *live.Cluster) {
	for _, st := range c.Stats() {
		fmt.Printf("  server %d (speed %g): share %5.1f%%, owns %2d file sets, served %d ops\n",
			st.ID, st.Speed, st.ShareFrac*100, len(st.Owned), st.Served)
	}
}
