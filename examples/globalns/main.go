// Global-namespace demo: addressing the cluster by path, like a file
// system client would.
//
// The paper's unit of placement — the file set — "is a subtree of the
// global file system namespace" (§2). This example stands up the full
// network stack (live cluster behind the TCP wire protocol), builds a
// mount table binding namespace subtrees to file sets, and then works
// purely with global paths: the server resolves each path to its file set,
// the file-set name hashes to a mapped region, and the region names the
// server — path → file set → interval → server, with no lookup tables
// anywhere.
//
// Run with: go run ./examples/globalns
package main

import (
	"fmt"
	"log"
	"time"

	"anufs/internal/live"
	"anufs/internal/sharedisk"
	"anufs/internal/wire"
)

func main() {
	disk := sharedisk.NewStore(0)
	for _, fs := range []string{"fs-root", "fs-projects", "fs-alpha", "fs-scratch"} {
		if err := disk.CreateFileSet(fs); err != nil {
			log.Fatal(err)
		}
	}
	cfg := live.DefaultConfig()
	cfg.Window = time.Hour // placement only; no tuning needed here
	cluster, err := live.NewCluster(cfg, disk, map[int]float64{0: 1, 1: 3, 2: 9})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	srv := wire.NewServer(cluster)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	c, err := wire.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(10 * time.Second)

	// Build the mount table: subtrees of the global namespace → file sets.
	mounts := map[string]string{
		"/":               "fs-root",
		"/projects":       "fs-projects",
		"/projects/alpha": "fs-alpha",
		"/scratch":        "fs-scratch",
	}
	for prefix, fs := range mounts {
		if err := c.Mount(prefix, fs); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("mount table:")
	for _, p := range []string{"/", "/projects", "/projects/alpha", "/scratch"} {
		fs := mounts[p]
		owner, err := c.Owner(fs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s → %-12s (hashes to server %d)\n", p, fs, owner)
	}

	// Work purely by global path.
	paths := []string{
		"/etc/config.yaml",
		"/projects/roadmap.md",
		"/projects/alpha/src/main.go",
		"/projects/alpha/src/main_test.go",
		"/scratch/tmp-123",
	}
	fmt.Println("\ncreating records by global path:")
	for _, p := range paths {
		if err := c.PCreate(p, sharedisk.Record{Size: int64(len(p)), Owner: "demo"}); err != nil {
			log.Fatal(err)
		}
		fs, rel, err := c.Resolve(p)
		if err != nil {
			log.Fatal(err)
		}
		owner, err := c.Owner(fs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-32s → fileset %-12s rel %-20s server %d\n", p, fs, rel, owner)
	}

	fmt.Println("\nreading back through the same resolution:")
	for _, p := range paths {
		rec, err := c.PStat(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-32s size=%d\n", p, rec.Size)
	}

	// The two alpha files live in the same file set and therefore always
	// move together — the indivisible unit of the paper's placement.
	fsA, _, _ := c.Resolve("/projects/alpha/src/main.go")
	fsB, _, _ := c.Resolve("/projects/alpha/src/main_test.go")
	fmt.Printf("\nfiles under one mount share a file set: %s == %s → placement moves them as a unit\n", fsA, fsB)
}
